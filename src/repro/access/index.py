"""Physical indexes realising access constraints and access templates.

Two index kinds (Section 4.1, "Implementation"):

* :class:`ConstraintIndex` — for an access constraint ``R(X → Y, N, 0̄)``: a
  hash index from ``X``-values to the exact distinct ``Y``-values.
* :class:`TemplateIndex` — for a *family* of levelled access templates
  ``R(X → Y, 2^k, d̄_k)``, ``k = 0..M``: per ``X``-value a K-D tree over the
  associated ``Y``-values; fetching at level ``k`` returns the (at most
  ``2^k``) representatives of the tree's level-``k`` frontier, together with
  the number of original tuples each representative stands for (needed by
  ``sum``/``count``/``avg``, Section 7).  The per-level resolutions ``d̄_k``
  are computed at build time as the worst representative-to-descendant
  distance across all groups.

Both indexes report entry counts so Exp-4 (Fig 6(k)) can measure index size.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..relational.database import AccessMeter
from ..relational.kdtree import KDTree
from ..relational.relation import Relation, Row
from .template import TemplateSpec

FetchedRow = Tuple[Row, float]  # (X ∪ Y values, represented-tuple count)


class ConstraintIndex:
    """Hash index for an access constraint ``R(X → Y, N, 0̄)``."""

    def __init__(self, relation: Relation, x: Sequence[str], y: Sequence[str]) -> None:
        self.relation_name = relation.schema.name
        self.x = tuple(x)
        self.y = tuple(y)
        schema = relation.schema
        x_positions = schema.positions(self.x)
        y_positions = schema.positions(self.y)
        # Each group stores its distinct Y-values together with the number of
        # base tuples carrying that value (Section 7's duplicate counts, used
        # by sum/count/avg evaluation over fetched data).
        self._groups: Dict[Tuple[object, ...], Dict[Tuple[object, ...], int]] = {}
        for row in relation:
            key = tuple(row[p] for p in x_positions)
            value = tuple(row[p] for p in y_positions)
            bucket = self._groups.setdefault(key, {})
            bucket[value] = bucket.get(value, 0) + 1
        self.n = max((len(v) for v in self._groups.values()), default=1)

    def spec(self, declared_n: Optional[int] = None) -> TemplateSpec:
        """The logical template realised by this index (resolution 0)."""
        return TemplateSpec(
            relation=self.relation_name,
            x=self.x,
            y=self.y,
            n=declared_n if declared_n is not None else max(1, self.n),
            resolution={a: 0.0 for a in self.y},
        )

    def fetch(self, x_value: Sequence[object], meter: Optional[AccessMeter] = None) -> List[FetchedRow]:
        """All exact ``Y``-values for ``x_value`` with their duplicate counts."""
        values = self._groups.get(tuple(x_value), {})
        if meter is not None:
            meter.charge(len(values), self.relation_name)
        key = tuple(x_value)
        return [(key + value, float(count)) for value, count in values.items()]

    def keys(self) -> List[Tuple[object, ...]]:
        return list(self._groups)

    @property
    def entry_count(self) -> int:
        """Number of (X, Y) entries stored."""
        return sum(len(v) for v in self._groups.values())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ConstraintIndex({self.relation_name}: {self.x} -> {self.y}, N={self.n})"


class TemplateIndex:
    """Levelled K-D-tree index for a family of access templates.

    For ``X = ∅`` there is a single tree over the whole relation (the
    canonical ``A_t`` case); otherwise one tree per distinct ``X``-value.
    """

    def __init__(
        self,
        relation: Relation,
        x: Sequence[str],
        y: Sequence[str],
        max_level: Optional[int] = None,
    ) -> None:
        self.relation_name = relation.schema.name
        self.x = tuple(x)
        self.y = tuple(y)
        schema = relation.schema
        self._y_schema = schema.project(self.y, name=f"{schema.name}_y")
        x_positions = schema.positions(self.x)
        y_positions = schema.positions(self.y)

        groups: Dict[Tuple[object, ...], List[Tuple[object, ...]]] = {}
        for row in relation:
            key = tuple(row[p] for p in x_positions)
            groups.setdefault(key, []).append(tuple(row[p] for p in y_positions))

        self._trees: Dict[Tuple[object, ...], KDTree] = {}
        max_group = 1
        for key, rows in groups.items():
            y_relation = Relation(self._y_schema, rows)
            self._trees[key] = KDTree(y_relation)
            max_group = max(max_group, len(set(rows)))

        # The deepest level worth materialising: beyond it every frontier node
        # is a single tuple and the resolution is 0.
        natural_max = max(
            (tree.exact_level() for tree in self._trees.values()), default=0
        )
        self.max_level = natural_max if max_level is None else min(max_level, natural_max)
        self._resolutions: Dict[int, Dict[str, float]] = {}
        self._precompute_resolutions()

    # -- resolutions -------------------------------------------------------------
    def _precompute_resolutions(self) -> None:
        for level in range(self.max_level + 1):
            worst: Dict[str, float] = {a: 0.0 for a in self.y}
            for tree in self._trees.values():
                res = tree.resolution(level)
                for attribute, value in res.items():
                    if value > worst[attribute]:
                        worst[attribute] = value
            self._resolutions[level] = worst

    def resolution(self, level: int) -> Dict[str, float]:
        """``d̄_k`` for level ``k`` (clamped to the materialised range)."""
        level = min(max(level, 0), self.max_level)
        return dict(self._resolutions[level])

    def level_spec(self, level: int) -> TemplateSpec:
        """The logical template ``R(X → Y, 2^level, d̄_level)``."""
        level = min(max(level, 0), self.max_level)
        return TemplateSpec(
            relation=self.relation_name,
            x=self.x,
            y=self.y,
            n=2**level,
            resolution=self.resolution(level),
        )

    # -- fetching ---------------------------------------------------------------
    def fetch(
        self,
        x_value: Sequence[object],
        level: int,
        meter: Optional[AccessMeter] = None,
    ) -> List[FetchedRow]:
        """Representatives (plus counts) for ``x_value`` at ``level``.

        The meter is charged one access per returned representative — the
        index is itself data derived from ``D`` and reading it consumes the
        resource budget exactly like reading base tuples (Section 8, Exp-4:
        "BEAS accesses at most α|D| tuples no matter whether the tuples are
        from the indices ... or the original D").
        """
        level = min(max(level, 0), self.max_level)
        tree = self._trees.get(tuple(x_value))
        if tree is None:
            return []
        reps = tree.representatives(level)
        if meter is not None:
            meter.charge(len(reps), self.relation_name)
        key = tuple(x_value)
        return [(key + rep, float(count)) for rep, count in reps]

    def keys(self) -> List[Tuple[object, ...]]:
        """All distinct ``X``-values with a tree (``[()]`` when ``X = ∅``)."""
        return list(self._trees)

    # -- size accounting ----------------------------------------------------------
    @property
    def entry_count(self) -> int:
        """Total number of stored representatives (tree nodes) across groups."""
        return sum(tree.node_count() for tree in self._trees.values())

    def levels(self) -> List[int]:
        return list(range(self.max_level + 1))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"TemplateIndex({self.relation_name}: {self.x or '∅'} -> {self.y}, "
            f"levels 0..{self.max_level}, {len(self._trees)} groups)"
        )
