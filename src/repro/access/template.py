"""Access templates and access constraints (Section 2.1).

An access template ``ψ = R(X → Y, N, d̄_Y)`` promises that for every
``X``-value ``ā`` there is an indexed set of at most ``N`` distinct tuples
that represents all ``Y``-values associated with ``ā`` within per-attribute
resolution ``d̄_Y``.  An *access constraint* is the special case ``d̄_Y = 0``
(the index returns the exact ``Y``-values), which is the notion of
[Fan et al., bounded evaluation].

These classes are purely *logical* descriptions; the physical indexes that
realise them live in :mod:`repro.access.index`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from ..errors import AccessSchemaError
from ..relational.relation import Relation


@dataclass(frozen=True)
class TemplateSpec:
    """The logical shape of an access template: ``R(X → Y, N, d̄_Y)``.

    Attributes:
        relation: name of the relation ``R``.
        x: the input attributes ``X`` (may be empty).
        y: the output attributes ``Y``.
        n: the cardinality bound ``N``.
        resolution: the resolution tuple ``d̄_Y`` mapping each ``Y`` attribute
            to its maximum representation error.
    """

    relation: str
    x: Tuple[str, ...]
    y: Tuple[str, ...]
    n: int
    resolution: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise AccessSchemaError(f"cardinality bound N must be positive, got {self.n}")
        if not self.y:
            raise AccessSchemaError("access template must output at least one attribute")
        overlap = set(self.x) & set(self.y)
        if overlap:
            raise AccessSchemaError(f"X and Y attributes overlap: {sorted(overlap)}")
        missing = [a for a in self.y if a not in self.resolution]
        if missing:
            # Default missing resolutions to exact (0).
            object.__setattr__(
                self,
                "resolution",
                {**{a: 0.0 for a in self.y}, **dict(self.resolution)},
            )

    @property
    def is_constraint(self) -> bool:
        """True when ``d̄_Y = 0̄`` — i.e. the template is an access constraint."""
        return all(v == 0 for v in self.resolution.values())

    def max_resolution(self) -> float:
        """``d̄^m`` — the largest per-attribute resolution of the template."""
        return max(self.resolution.values(), default=0.0)

    def resolution_of(self, attribute: str) -> float:
        """Resolution on one output attribute (0 for attributes not in Y)."""
        return float(self.resolution.get(attribute, 0.0))

    def describe(self) -> str:
        """Human-readable form, e.g. ``poi({type,city} -> {price,address}, 8)``."""
        x = "{" + ",".join(self.x) + "}" if self.x else "∅"
        y = "{" + ",".join(self.y) + "}"
        kind = "constraint" if self.is_constraint else "template"
        return f"{self.relation}({x} -> {y}, N={self.n}) [{kind}]"

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"TemplateSpec({self.describe()})"


def conforms(
    relation: Relation,
    spec: TemplateSpec,
    fetched: Mapping[Tuple[object, ...], Sequence[Tuple[object, ...]]],
) -> bool:
    """Check ``D |= ψ`` for one relation instance against fetched samples.

    Args:
        relation: the instance ``D_R``.
        spec: the template ``ψ``.
        fetched: for each ``X``-value, the sample ``D̃^N_Y`` the index returns
            (tuples over the ``Y`` attributes).

    Returns ``True`` iff (a) every sample has at most ``N`` distinct tuples
    and (b) every real ``Y``-value of ``D_R`` is within ``d̄_Y`` of some
    sample tuple on every ``Y`` attribute.
    """
    schema = relation.schema
    x_positions = schema.positions(spec.x)
    y_positions = schema.positions(spec.y)
    distances = [schema.attribute(a).distance for a in spec.y]
    resolutions = [spec.resolution_of(a) for a in spec.y]

    groups: Dict[Tuple[object, ...], List[Tuple[object, ...]]] = {}
    for row in relation:
        key = tuple(row[p] for p in x_positions)
        groups.setdefault(key, []).append(tuple(row[p] for p in y_positions))

    for key, y_values in groups.items():
        sample = list(fetched.get(key, ()))
        if len(set(sample)) > spec.n:
            return False
        if not sample and y_values:
            return False
        for y_value in y_values:
            covered = False
            for candidate in sample:
                if all(
                    dist(yv, cv) <= res
                    for yv, cv, dist, res in zip(y_value, candidate, distances, resolutions)
                ):
                    covered = True
                    break
            if not covered:
                return False
    return True
