"""Access schemas: templates, constraints, physical indexes, builders, discovery."""

from .builder import AccessSchemaBuilder, ConstraintSpec, FamilySpec
from .discovery import DiscoveryReport, discover, discover_constraints, discover_families
from .index import ConstraintIndex, TemplateIndex
from .schema import AccessConstraint, AccessSchema, TemplateFamily
from .template import TemplateSpec, conforms

__all__ = [
    "AccessConstraint",
    "AccessSchema",
    "AccessSchemaBuilder",
    "ConstraintIndex",
    "ConstraintSpec",
    "DiscoveryReport",
    "FamilySpec",
    "TemplateFamily",
    "TemplateIndex",
    "TemplateSpec",
    "conforms",
    "discover",
    "discover_constraints",
    "discover_families",
]
