"""Construction of access schemas over a database instance.

:class:`AccessSchemaBuilder` builds:

* the canonical schema ``A_t`` of the Approximability Theorem — for every
  relation ``R`` a levelled template family ``R(∅ → attr(R), 2^k, d̄_k)``
  realised by a K-D tree over ``D_R`` (Section 4.1);
* user-declared access constraints ``R(X → Y, N, 0̄)`` (the paper picks 7–12
  per dataset, e.g. ``friend(pid → fid, 5000, 0)``);
* for every declared constraint, the derived template families
  ``R(X∪Y → Z, 2^i, d̄_i)`` with ``Z = attr(R) \\ (X∪Y)`` used in the
  experiments (Section 8, "Access schema").

The result is an :class:`~repro.access.schema.AccessSchema` that subsumes
``A_t``, the precondition of the BEAS algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..errors import AccessSchemaError
from ..relational.database import Database
from .index import ConstraintIndex, TemplateIndex
from .schema import AccessConstraint, AccessSchema, TemplateFamily


@dataclass(frozen=True)
class ConstraintSpec:
    """Declarative description of an access constraint to build.

    ``n`` may be omitted; the builder then measures the actual maximum group
    size from the data (the constraint is tight).
    """

    relation: str
    x: Tuple[str, ...]
    y: Tuple[str, ...]
    n: Optional[int] = None


@dataclass(frozen=True)
class FamilySpec:
    """Declarative description of a template family ``R(X → Y, 2^k, d̄_k)``."""

    relation: str
    x: Tuple[str, ...]
    y: Tuple[str, ...]
    max_level: Optional[int] = None


class AccessSchemaBuilder:
    """Builds access schemas (including the canonical ``A_t``) for a database."""

    def __init__(self, database: Database, max_level: Optional[int] = None) -> None:
        self.database = database
        self.max_level = max_level

    # -- canonical schema ---------------------------------------------------------
    def build_canonical(self) -> AccessSchema:
        """``A_t``: one whole-relation template family per relation."""
        families = []
        for relation_name in self.database.relation_names:
            relation = self.database.relation(relation_name)
            if len(relation) == 0:
                continue
            schema = relation.schema
            index = TemplateIndex(
                relation,
                x=(),
                y=schema.attribute_names,
                max_level=self.max_level,
            )
            families.append(
                TemplateFamily(relation=relation_name, x=(), y=schema.attribute_names, index=index)
            )
        return AccessSchema(families=families)

    # -- declared constraints and derived templates ----------------------------------
    def build_constraint(self, spec: ConstraintSpec) -> AccessConstraint:
        relation = self.database.relation(spec.relation)
        index = ConstraintIndex(relation, spec.x, spec.y)
        declared_n = spec.n if spec.n is not None else index.n
        if declared_n < index.n:
            raise AccessSchemaError(
                f"declared N={declared_n} for {spec.relation}({spec.x} -> {spec.y}) "
                f"is smaller than the actual maximum group size {index.n}; "
                f"the database would not conform to the constraint"
            )
        return AccessConstraint(spec=index.spec(declared_n), index=index)

    def build_family(self, spec: FamilySpec) -> TemplateFamily:
        relation = self.database.relation(spec.relation)
        index = TemplateIndex(
            relation,
            x=spec.x,
            y=spec.y,
            max_level=spec.max_level if spec.max_level is not None else self.max_level,
        )
        return TemplateFamily(relation=spec.relation, x=spec.x, y=spec.y, index=index)

    def derived_family_spec(self, spec: ConstraintSpec) -> Optional[FamilySpec]:
        """The family ``R(X∪Y → Z, 2^i, d̄_i)`` derived from a constraint.

        Returns ``None`` when ``Z = attr(R) \\ (X∪Y)`` is empty (the
        constraint already covers every attribute).
        """
        schema = self.database.schema.relation(spec.relation)
        covered = set(spec.x) | set(spec.y)
        z = tuple(a for a in schema.attribute_names if a not in covered)
        if not z:
            return None
        return FamilySpec(relation=spec.relation, x=spec.x + spec.y, y=z, max_level=self.max_level)

    # -- full build --------------------------------------------------------------------
    def build(
        self,
        constraints: Sequence[ConstraintSpec] = (),
        families: Sequence[FamilySpec] = (),
        include_canonical: bool = True,
        derive_from_constraints: bool = True,
    ) -> AccessSchema:
        """Build a complete access schema.

        Args:
            constraints: user-declared access constraints.
            families: additional template families to build.
            include_canonical: include the canonical ``A_t`` (required by the
                BEAS algorithms; disable only for focused unit tests).
            derive_from_constraints: also build the ``R(X∪Y → Z, 2^i, d̄_i)``
                families the paper derives from every declared constraint.
        """
        schema = AccessSchema()
        for constraint_spec in constraints:
            schema.add_constraint(self.build_constraint(constraint_spec))
            if derive_from_constraints:
                derived = self.derived_family_spec(constraint_spec)
                if derived is not None:
                    schema.add_family(self.build_family(derived))
        for family_spec in families:
            schema.add_family(self.build_family(family_spec))
        if include_canonical:
            schema = schema.merge(self.build_canonical())
        return schema
