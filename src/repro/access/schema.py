"""Access schemas: collections of access constraints and template families.

An :class:`AccessSchema` bundles, for one database instance:

* **access constraints** — ``R(X → Y, N, 0̄)`` backed by
  :class:`~repro.access.index.ConstraintIndex`, and
* **template families** — levelled templates ``R(X → Y, 2^k, d̄_k)`` backed by
  :class:`~repro.access.index.TemplateIndex`.

The chase and chAT query the schema for templates *applicable* to a relation
given the set of attributes already covered; the executor fetches through the
schema so every access is metered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..relational.database import AccessMeter, Database
from .index import ConstraintIndex, FetchedRow, TemplateIndex
from .template import TemplateSpec, conforms


@dataclass
class AccessConstraint:
    """An access constraint plus its physical index."""

    spec: TemplateSpec
    index: ConstraintIndex

    @property
    def relation(self) -> str:
        return self.spec.relation

    def fetch(self, x_value: Sequence[object], meter: Optional[AccessMeter] = None) -> List[FetchedRow]:
        return self.index.fetch(x_value, meter)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"AccessConstraint({self.spec.describe()})"


@dataclass
class TemplateFamily:
    """A family of levelled access templates sharing ``(R, X, Y)``."""

    relation: str
    x: Tuple[str, ...]
    y: Tuple[str, ...]
    index: TemplateIndex

    @property
    def max_level(self) -> int:
        return self.index.max_level

    def spec_at(self, level: int) -> TemplateSpec:
        return self.index.level_spec(level)

    def resolution(self, level: int) -> Dict[str, float]:
        return self.index.resolution(level)

    def fetch(
        self, x_value: Sequence[object], level: int, meter: Optional[AccessMeter] = None
    ) -> List[FetchedRow]:
        return self.index.fetch(x_value, level, meter)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"TemplateFamily({self.relation}: {self.x or '∅'} -> {self.y}, 0..{self.max_level})"


class AccessSchema:
    """A set of access constraints and template families over one database."""

    def __init__(
        self,
        constraints: Optional[Sequence[AccessConstraint]] = None,
        families: Optional[Sequence[TemplateFamily]] = None,
    ) -> None:
        self.constraints: List[AccessConstraint] = list(constraints or [])
        self.families: List[TemplateFamily] = list(families or [])

    # -- construction helpers -----------------------------------------------------
    def add_constraint(self, constraint: AccessConstraint) -> None:
        self.constraints.append(constraint)

    def add_family(self, family: TemplateFamily) -> None:
        self.families.append(family)

    def merge(self, other: "AccessSchema") -> "AccessSchema":
        """A new schema with the constraints and families of both."""
        return AccessSchema(self.constraints + other.constraints, self.families + other.families)

    # -- lookups used by the chase / chAT ------------------------------------------
    def constraints_for(self, relation: str) -> List[AccessConstraint]:
        return [c for c in self.constraints if c.relation == relation]

    def families_for(self, relation: str) -> List[TemplateFamily]:
        return [f for f in self.families if f.relation == relation]

    def applicable_constraints(
        self, relation: str, available: Iterable[str]
    ) -> List[AccessConstraint]:
        """Constraints on ``relation`` whose ``X`` is contained in ``available``."""
        available_set = set(available)
        return [
            c for c in self.constraints_for(relation) if set(c.spec.x) <= available_set
        ]

    def applicable_families(self, relation: str, available: Iterable[str]) -> List[TemplateFamily]:
        """Template families on ``relation`` whose ``X`` is contained in ``available``."""
        available_set = set(available)
        return [f for f in self.families_for(relation) if set(f.x) <= available_set]

    def whole_relation_family(self, relation: str) -> Optional[TemplateFamily]:
        """The canonical ``R(∅ → attr(R), 2^k, d̄_k)`` family, if present."""
        for family in self.families_for(relation):
            if not family.x:
                return family
        return None

    # -- counting / size ------------------------------------------------------------
    @property
    def cardinality(self) -> int:
        """``||A||`` — number of constraints plus number of distinct templates."""
        return len(self.constraints) + sum(f.max_level + 1 for f in self.families)

    def distinct_template_groups(self) -> int:
        """Templates grouped by their X and Y attribute sets (as reported in Exp setup)."""
        groups = {(c.spec.relation, c.spec.x, c.spec.y) for c in self.constraints}
        groups |= {(f.relation, f.x, f.y) for f in self.families}
        return len(groups)

    def index_entry_counts(self) -> Dict[str, int]:
        """Index sizes in entries, split by constraint vs template indexes."""
        return {
            "constraints": sum(c.index.entry_count for c in self.constraints),
            "templates": sum(f.index.entry_count for f in self.families),
        }

    def total_index_entries(self) -> int:
        counts = self.index_entry_counts()
        return counts["constraints"] + counts["templates"]

    # -- conformance -------------------------------------------------------------------
    def check_conformance(self, database: Database, sample_levels: Sequence[int] = (0,)) -> bool:
        """Verify ``D |= A`` by checking every constraint and sampled template levels.

        Constraint indexes conform by construction (they return the exact
        values), so the interesting part is the template families: at each
        requested level we verify the cardinality bound and the resolution
        guarantee against the base relation.
        """
        for constraint in self.constraints:
            relation = database.relation(constraint.relation)
            fetched = {
                key: [row[len(constraint.spec.x):] for row, _ in constraint.fetch(key)]
                for key in constraint.index.keys()
            }
            if not conforms(relation, constraint.spec, fetched):
                return False
        for family in self.families:
            relation = database.relation(family.relation)
            for level in sample_levels:
                level = min(level, family.max_level)
                spec = family.spec_at(level)
                fetched = {
                    key: [row[len(family.x):] for row, _ in family.fetch(key, level)]
                    for key in family.index.keys()
                }
                if not conforms(relation, spec, fetched):
                    return False
        return True

    def describe(self) -> str:
        """Multi-line human-readable summary of the schema."""
        lines = [f"AccessSchema: {len(self.constraints)} constraints, {len(self.families)} template families"]
        for constraint in self.constraints:
            lines.append(f"  {constraint.spec.describe()}")
        for family in self.families:
            top = family.spec_at(family.max_level)
            lines.append(
                f"  {family.relation}({','.join(family.x) or '∅'} -> {','.join(family.y)}, "
                f"2^0..2^{family.max_level}) max-res={top.max_resolution():g}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"AccessSchema({len(self.constraints)} constraints, "
            f"{len(self.families)} families, ||A||={self.cardinality})"
        )
