"""Discovery (mining) of access constraints and templates from data.

Section 4.1 suggests that algorithms for discovering functional dependencies
can be extended to mine access constraints, and further extended — "with
aggregates to compute cardinality bounds and sampling to pick representative
tuples" — to discover access templates.  This module implements a practical
version of that idea:

* :func:`discover_constraints` scans candidate ``X → Y`` pairs of a relation
  and keeps those whose maximum group size ``max_ā |D_Y(X = ā)|`` is at most
  a threshold ``max_n`` — these become access constraints the indexes can
  afford to answer exactly.
* :func:`discover_families` proposes levelled template families for candidate
  ``X`` sets whose group sizes are too large for a constraint but whose
  ``Y``-values can be represented at useful resolutions.

Both functions cap the number of candidates examined so discovery stays
cheap relative to index construction.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..relational.database import Database
from ..relational.relation import Relation
from .builder import ConstraintSpec, FamilySpec


@dataclass(frozen=True)
class DiscoveryReport:
    """Outcome of mining one relation."""

    relation: str
    constraints: Tuple[ConstraintSpec, ...]
    families: Tuple[FamilySpec, ...]


def _max_group_size(relation: Relation, x: Sequence[str]) -> int:
    positions = relation.schema.positions(x)
    counts: Dict[Tuple[object, ...], int] = {}
    for row in relation:
        key = tuple(row[p] for p in positions)
        counts[key] = counts.get(key, 0) + 1
    return max(counts.values(), default=0)


def _distinct_count(relation: Relation, attribute: str) -> int:
    position = relation.schema.position(attribute)
    return len({row[position] for row in relation})


def discover_constraints(
    relation: Relation,
    max_n: int = 1000,
    max_x_size: int = 2,
    max_candidates: int = 200,
) -> List[ConstraintSpec]:
    """Mine access constraints ``R(X → Y, N, 0)`` with ``N <= max_n``.

    Candidates are X-sets of up to ``max_x_size`` attributes, preferring
    attributes with many distinct values (more selective groupings).  For a
    qualifying ``X`` the constraint outputs all remaining attributes.
    """
    attributes = list(relation.schema.attribute_names)
    if not attributes or len(relation) == 0:
        return []

    # Rank attributes by selectivity so the most promising X-sets come first.
    selectivity = {a: _distinct_count(relation, a) for a in attributes}
    ranked = sorted(attributes, key=lambda a: -selectivity[a])

    candidates: List[Tuple[str, ...]] = []
    for size in range(1, max_x_size + 1):
        for combo in itertools.combinations(ranked, size):
            candidates.append(combo)
            if len(candidates) >= max_candidates:
                break
        if len(candidates) >= max_candidates:
            break

    discovered: List[ConstraintSpec] = []
    for x in candidates:
        y = tuple(a for a in attributes if a not in x)
        if not y:
            continue
        group_size = _max_group_size(relation, x)
        if 0 < group_size <= max_n:
            discovered.append(
                ConstraintSpec(relation=relation.schema.name, x=x, y=y, n=group_size)
            )
    return discovered


def discover_families(
    relation: Relation,
    constraints: Sequence[ConstraintSpec] = (),
    max_x_size: int = 1,
    min_group_size: int = 8,
    max_candidates: int = 50,
) -> List[FamilySpec]:
    """Propose levelled template families for attribute sets not already covered.

    Prefers X-sets whose groups are *large* (a constraint would be too
    expensive) but non-degenerate — exactly the cases where approximating the
    associated values with a K-D tree pays off.
    """
    attributes = list(relation.schema.attribute_names)
    if not attributes or len(relation) == 0:
        return []
    constrained_x = {tuple(c.x) for c in constraints}

    candidates: List[Tuple[str, ...]] = []
    for size in range(1, max_x_size + 1):
        for combo in itertools.combinations(attributes, size):
            if combo in constrained_x:
                continue
            candidates.append(combo)
            if len(candidates) >= max_candidates:
                break
        if len(candidates) >= max_candidates:
            break

    families: List[FamilySpec] = []
    for x in candidates:
        y = tuple(a for a in attributes if a not in x)
        if not y:
            continue
        group_size = _max_group_size(relation, x)
        if group_size >= min_group_size:
            families.append(FamilySpec(relation=relation.schema.name, x=x, y=y))
    return families


def discover(
    database: Database,
    max_n: int = 1000,
    max_constraints_per_relation: int = 4,
    max_families_per_relation: int = 2,
) -> List[DiscoveryReport]:
    """Mine constraints and template families for every relation of a database."""
    reports: List[DiscoveryReport] = []
    for relation_name in database.relation_names:
        relation = database.relation(relation_name)
        constraints = discover_constraints(relation, max_n=max_n)
        # Prefer the tightest constraints (smallest N).
        constraints.sort(key=lambda c: (c.n or 0, len(c.x)))
        constraints = constraints[:max_constraints_per_relation]
        families = discover_families(relation, constraints)[:max_families_per_relation]
        reports.append(
            DiscoveryReport(
                relation=relation_name,
                constraints=tuple(constraints),
                families=tuple(families),
            )
        )
    return reports
