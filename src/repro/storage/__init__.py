"""Persistent storage tier — the public face of the mmap-backed backends.

Thin façade over :mod:`repro.relational.mmapstore` (the implementation
lives beside the other storage backends so it can share their private
buffer machinery).  Importing this package — or anything that imports
:mod:`repro.relational` — registers the ``"mmap"`` and ``"mmap-sharded"``
backends.  See ``src/repro/storage/README.md`` for a quickstart on
creating, reopening, and sharing an on-disk dataset.
"""

from ..relational.mmapstore import (
    FILE_SUFFIX,
    MANIFEST_NAME,
    MmapShardedStore,
    MmapStore,
    cleanup_store_dir,
    get_store_dir,
    open_database,
    save_database,
    set_store_dir,
)

__all__ = [
    "FILE_SUFFIX",
    "MANIFEST_NAME",
    "MmapShardedStore",
    "MmapStore",
    "cleanup_store_dir",
    "get_store_dir",
    "open_database",
    "save_database",
    "set_store_dir",
]
