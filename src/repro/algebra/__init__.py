"""Query algebra: AST, predicates, SQL parser, evaluator, tableau, relaxation."""

from .aggregates import AggregateFunction
from .ast import (
    Difference,
    GroupBy,
    Product,
    Project,
    QueryNode,
    Rename,
    Scan,
    Select,
    Union,
    condition_on,
    resolve_attribute,
)
from .evaluator import (
    DatabaseProvider,
    Evaluator,
    Frame,
    MappingProvider,
    RelationProvider,
    evaluate_exact,
)
from .predicates import (
    AttrRef,
    CompareOp,
    Comparison,
    Conjunction,
    Const,
    MaskProgram,
    get_mask_chunk_size,
    set_mask_chunk_size,
)
from .relax import RelaxationOracle, relaxed_query, split_condition
from .spc import SPCQuery, classify, max_spc_subqueries, maximal_induced_query, to_spc
from .sql import parse_query
from .tableau import Constant, Tableau, TupleTemplate, Variable, build_tableau

__all__ = [
    "AggregateFunction",
    "AttrRef",
    "CompareOp",
    "Comparison",
    "Conjunction",
    "MaskProgram",
    "Const",
    "get_mask_chunk_size",
    "set_mask_chunk_size",
    "Constant",
    "DatabaseProvider",
    "Difference",
    "Evaluator",
    "Frame",
    "GroupBy",
    "MappingProvider",
    "Product",
    "Project",
    "QueryNode",
    "RelationProvider",
    "RelaxationOracle",
    "Rename",
    "SPCQuery",
    "Scan",
    "Select",
    "Tableau",
    "TupleTemplate",
    "Union",
    "Variable",
    "build_tableau",
    "classify",
    "condition_on",
    "evaluate_exact",
    "max_spc_subqueries",
    "maximal_induced_query",
    "parse_query",
    "relaxed_query",
    "resolve_attribute",
    "split_condition",
    "to_spc",
]
