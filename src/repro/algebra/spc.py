"""SPC canonical form and SPC-related query decompositions.

Three pieces of machinery the BEAS algorithms rely on:

* :class:`SPCQuery` — the canonical form of an SPC query: a set of relation
  atoms (alias → relation), a conjunction of selection/join predicates, and a
  list of output columns.  The tableau/chase (Section 5) and the join-aware
  evaluator both work on this form.
* :func:`max_spc_subqueries` — the maximal SPC sub-queries of an RA query
  (Section 6): BEAS_RA builds fetching plans for each of them.
* :func:`maximal_induced_query` — ``Q̂``, the query obtained by dropping the
  negated side of every set difference, so ``Q̂(D) ⊇ Q(D)`` (used both to
  enforce set-difference semantics and to bound coverage).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import QueryError
from ..relational.schema import DatabaseSchema
from .ast import Difference, GroupBy, Product, Project, QueryNode, Rename, Scan, Select, Union
from .predicates import AttrRef, Comparison, Conjunction


@dataclass
class SPCQuery:
    """Canonical form of an SPC query.

    Attributes:
        atoms: mapping alias → relation name (the ``from`` list).
        condition: conjunction of all selection predicates, with attribute
            references qualified by atom alias.
        output: the projected columns (qualified references).  When empty the
            query outputs all attributes of all atoms.
    """

    atoms: Dict[str, str]
    condition: Conjunction
    output: Tuple[AttrRef, ...]

    @property
    def relation_names(self) -> List[str]:
        return list(self.atoms.values())

    def output_or_all(self, db_schema: DatabaseSchema) -> Tuple[AttrRef, ...]:
        """The output columns, defaulting to every attribute of every atom."""
        if self.output:
            return self.output
        refs: List[AttrRef] = []
        for alias, relation in self.atoms.items():
            for attr in db_schema.relation(relation).attribute_names:
                refs.append(AttrRef(alias, attr))
        return tuple(refs)

    def attributes_of(self, alias: str) -> List[str]:
        """Attributes of one atom that the query actually uses.

        This is the union of attributes mentioned in the condition and in the
        output columns; the chase only needs to cover these.
        """
        used: List[str] = []
        for ref in list(self.condition.attributes()) + list(self.output):
            if ref.alias == alias and ref.attribute not in used:
                used.append(ref.attribute)
        return used

    def selection_predicates(self, alias: str) -> List[Comparison]:
        """Attr/const predicates that constrain attributes of ``alias``."""
        preds = []
        for comparison in self.condition:
            comparison = comparison.normalized()
            if comparison.is_attr_const and isinstance(comparison.left, AttrRef):
                if comparison.left.alias == alias:
                    preds.append(comparison)
        return preds

    def join_predicates(self) -> List[Comparison]:
        """Attr/attr predicates (joins) of the query."""
        return [c for c in self.condition if c.is_attr_attr]

    def to_ast(self) -> QueryNode:
        """Rebuild an equivalent AST (scan/product → select → project)."""
        node: Optional[QueryNode] = None
        for alias, relation in self.atoms.items():
            scan = Scan(relation, alias)
            node = scan if node is None else Product(node, scan)
        if node is None:
            raise QueryError("SPC query with no relation atoms")
        if self.condition:
            node = Select(node, self.condition)
        if self.output:
            node = Project(node, tuple(self.output))
        return node

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        atoms = ", ".join(f"{rel} as {alias}" for alias, rel in self.atoms.items())
        return f"SPCQuery(from [{atoms}] where {self.condition})"


def to_spc(node: QueryNode) -> SPCQuery:
    """Convert an SPC AST (σ/π/×/ρ over scans) to canonical form.

    Raises :class:`~repro.errors.QueryError` if the subtree is not SPC.
    """
    if not node.is_spc():
        raise QueryError("query is not an SPC query (contains ∪, − or group-by)")

    atoms: Dict[str, str] = {}
    comparisons: List[Comparison] = []
    output: List[AttrRef] = []

    def visit(current: QueryNode) -> None:
        if isinstance(current, Scan):
            alias = current.effective_alias
            if alias in atoms:
                raise QueryError(f"duplicate relation alias {alias!r}")
            atoms[alias] = current.relation
            return
        if isinstance(current, Select):
            comparisons.extend(current.condition.comparisons)
            visit(current.child)
            return
        if isinstance(current, Product):
            visit(current.left)
            visit(current.right)
            return
        if isinstance(current, Project):
            # Outer-most projection wins; inner projections are ignored for
            # the canonical form (they only restrict which attributes are
            # visible, and the canonical output already does that).
            if not output:
                output.extend(current.columns)
            visit(current.child)
            return
        if isinstance(current, Rename):
            visit(current.child)
            return
        raise QueryError(f"unexpected node {type(current).__name__} in SPC query")

    visit(node)
    return SPCQuery(atoms=atoms, condition=Conjunction.of(comparisons), output=tuple(output))


def max_spc_subqueries(node: QueryNode) -> List[QueryNode]:
    """The maximal SPC sub-queries of an RA / RA_aggr query.

    A maximal SPC sub-query is an SPC subtree that is not contained in any
    larger SPC subtree.  BEAS_RA generates a fetching plan for each of them
    and stitches the plans together (Section 6).
    """
    if node.is_spc():
        return [node]
    result: List[QueryNode] = []
    for child in node.children():
        result.extend(max_spc_subqueries(child))
    return result


def maximal_induced_query(node: QueryNode) -> QueryNode:
    """``Q̂`` — drop the negated side of every set difference in the query.

    For any database ``D``, ``Q̂(D) ⊇ Q(D)``; BEAS_RA uses ``Q̂`` both to
    enforce set-difference semantics without scanning ``D`` and to derive a
    sound coverage bound (Section 6).
    """
    if isinstance(node, Difference):
        return maximal_induced_query(node.left)
    if isinstance(node, Scan):
        return node
    if isinstance(node, Select):
        return Select(maximal_induced_query(node.child), node.condition)
    if isinstance(node, Project):
        return Project(maximal_induced_query(node.child), node.columns)
    if isinstance(node, Product):
        return Product(maximal_induced_query(node.left), maximal_induced_query(node.right))
    if isinstance(node, Union):
        return Union(maximal_induced_query(node.left), maximal_induced_query(node.right))
    if isinstance(node, Rename):
        return Rename(maximal_induced_query(node.child), node.mapping)
    if isinstance(node, GroupBy):
        return GroupBy(
            maximal_induced_query(node.child),
            node.group_columns,
            node.aggregate,
            node.agg_column,
        )
    raise QueryError(f"unsupported node {type(node).__name__}")


def classify(node: QueryNode) -> str:
    """Classify a query as ``"SPC"``, ``"RA"``, ``"agg(SPC)"`` or ``"agg(RA)"``.

    Used by the experiment harness (Fig 6(i) groups accuracy by query type).
    """
    if isinstance(node, GroupBy) or node.has_aggregate():
        inner_spc = all(
            child.is_spc()
            for n in node.walk()
            if isinstance(n, GroupBy)
            for child in n.children()
        )
        return "agg(SPC)" if inner_spc else "agg(RA)"
    return "SPC" if node.is_spc() else "RA"
