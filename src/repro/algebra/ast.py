"""Relational-algebra AST for RA and RA_aggr queries.

Operators: scan (with alias), selection, projection, Cartesian product,
union, set difference, renaming and group-by aggregation.  Every node can
compute its output :class:`~repro.relational.schema.RelationSchema` against a
database schema; output attributes are qualified as ``alias.attribute`` so
that predicates and downstream operators can refer to them unambiguously, and
they inherit the distance functions of the base attributes (needed by the RC
measure and by relaxed evaluation plans).
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, fields, is_dataclass
from typing import List, Optional, Tuple

from ..errors import QueryError
from ..relational.distance import NUMERIC
from ..relational.schema import Attribute, DatabaseSchema, RelationSchema
from .aggregates import AggregateFunction
from .predicates import AttrRef, Comparison, Conjunction, resolve_position


class QueryNode:
    """Base class of all RA / RA_aggr operators."""

    def children(self) -> List["QueryNode"]:
        """Direct child operators."""
        raise NotImplementedError

    def output_schema(self, db_schema: DatabaseSchema) -> RelationSchema:
        """The schema of this operator's result."""
        raise NotImplementedError

    # -- classification helpers ----------------------------------------------
    def walk(self) -> List["QueryNode"]:
        """All nodes of the subtree, pre-order."""
        nodes: List[QueryNode] = [self]
        for child in self.children():
            nodes.extend(child.walk())
        return nodes

    def scans(self) -> List["Scan"]:
        """All relation scans in the subtree."""
        return [node for node in self.walk() if isinstance(node, Scan)]

    def has_difference(self) -> bool:
        return any(isinstance(node, Difference) for node in self.walk())

    def has_union(self) -> bool:
        return any(isinstance(node, Union) for node in self.walk())

    def has_aggregate(self) -> bool:
        return any(isinstance(node, GroupBy) for node in self.walk())

    def is_spc(self) -> bool:
        """True when the subtree uses only σ, π, × and scans (an SPC query)."""
        return all(
            isinstance(node, (Scan, Select, Project, Product, Rename))
            for node in self.walk()
        )

    def selection_count(self) -> int:
        """Number of atomic comparisons across all selections (``#-sel``)."""
        return sum(
            len(node.condition)
            for node in self.walk()
            if isinstance(node, Select)
        )

    def product_count(self) -> int:
        """Number of Cartesian products in the query (``#-prod``)."""
        return sum(1 for node in self.walk() if isinstance(node, Product))

    def relation_count(self) -> int:
        """``||Q||`` — the number of relation atoms in the query."""
        return len(self.scans())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}()"


@dataclass(frozen=True, repr=False)
class Scan(QueryNode):
    """A base-relation atom ``R as alias`` (alias defaults to the name)."""

    relation: str
    alias: Optional[str] = None

    @property
    def effective_alias(self) -> str:
        return self.alias or self.relation

    def children(self) -> List[QueryNode]:
        return []

    def output_schema(self, db_schema: DatabaseSchema) -> RelationSchema:
        base = db_schema.relation(self.relation)
        alias = self.effective_alias
        attrs = [Attribute(f"{alias}.{a.name}", a.distance) for a in base.attributes]
        return RelationSchema(alias, attrs)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Scan({self.relation} as {self.effective_alias})"


@dataclass(frozen=True, repr=False)
class Select(QueryNode):
    """Selection ``σ_condition(child)``."""

    child: QueryNode
    condition: Conjunction

    def children(self) -> List[QueryNode]:
        return [self.child]

    def output_schema(self, db_schema: DatabaseSchema) -> RelationSchema:
        return self.child.output_schema(db_schema)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Select({self.condition})"


@dataclass(frozen=True, repr=False)
class Project(QueryNode):
    """Projection ``π_columns(child)``.

    ``columns`` are attribute references into the child's output; output
    attribute names keep the qualified form of the reference.
    """

    child: QueryNode
    columns: Tuple[AttrRef, ...]

    def children(self) -> List[QueryNode]:
        return [self.child]

    def output_schema(self, db_schema: DatabaseSchema) -> RelationSchema:
        child_schema = self.child.output_schema(db_schema)
        attrs = []
        for ref in self.columns:
            name = resolve_attribute(child_schema, ref)
            attrs.append(child_schema.attribute(name))
        return RelationSchema("π", attrs)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Project({', '.join(c.qualified for c in self.columns)})"


@dataclass(frozen=True, repr=False)
class Product(QueryNode):
    """Cartesian product ``left × right``."""

    left: QueryNode
    right: QueryNode

    def children(self) -> List[QueryNode]:
        return [self.left, self.right]

    def output_schema(self, db_schema: DatabaseSchema) -> RelationSchema:
        left_schema = self.left.output_schema(db_schema)
        right_schema = self.right.output_schema(db_schema)
        names = set(left_schema.attribute_names) & set(right_schema.attribute_names)
        if names:
            raise QueryError(f"Cartesian product has ambiguous attributes: {sorted(names)}")
        return RelationSchema("×", left_schema.attributes + right_schema.attributes)


@dataclass(frozen=True, repr=False)
class Union(QueryNode):
    """Set union ``left ∪ right`` (union-compatible children)."""

    left: QueryNode
    right: QueryNode

    def children(self) -> List[QueryNode]:
        return [self.left, self.right]

    def output_schema(self, db_schema: DatabaseSchema) -> RelationSchema:
        left_schema = self.left.output_schema(db_schema)
        right_schema = self.right.output_schema(db_schema)
        if len(left_schema) != len(right_schema):
            raise QueryError("union of queries with different arities")
        return left_schema


@dataclass(frozen=True, repr=False)
class Difference(QueryNode):
    """Set difference ``left − right`` (union-compatible children)."""

    left: QueryNode
    right: QueryNode

    def children(self) -> List[QueryNode]:
        return [self.left, self.right]

    def output_schema(self, db_schema: DatabaseSchema) -> RelationSchema:
        left_schema = self.left.output_schema(db_schema)
        right_schema = self.right.output_schema(db_schema)
        if len(left_schema) != len(right_schema):
            raise QueryError("difference of queries with different arities")
        return left_schema


@dataclass(frozen=True, repr=False)
class Rename(QueryNode):
    """Renaming ``ρ``: give the child's output attributes new names."""

    child: QueryNode
    mapping: Tuple[Tuple[str, str], ...]  # (old_name, new_name) pairs

    def children(self) -> List[QueryNode]:
        return [self.child]

    def output_schema(self, db_schema: DatabaseSchema) -> RelationSchema:
        child_schema = self.child.output_schema(db_schema)
        rename_map = dict(self.mapping)
        attrs = [
            Attribute(rename_map.get(a.name, a.name), a.distance)
            for a in child_schema.attributes
        ]
        return RelationSchema(child_schema.name, attrs)


@dataclass(frozen=True, repr=False)
class GroupBy(QueryNode):
    """Aggregation ``gpBy(child, group_columns, agg(agg_column))``.

    The output schema is the group-by columns followed by one aggregate
    column named ``agg(attribute)``; the aggregate column always uses the
    numeric distance (aggregate values are compared by ``|v - v'|``,
    Section 3.2).
    """

    child: QueryNode
    group_columns: Tuple[AttrRef, ...]
    aggregate: AggregateFunction
    agg_column: AttrRef

    def children(self) -> List[QueryNode]:
        return [self.child]

    def output_schema(self, db_schema: DatabaseSchema) -> RelationSchema:
        child_schema = self.child.output_schema(db_schema)
        attrs = []
        for ref in self.group_columns:
            name = resolve_attribute(child_schema, ref)
            attrs.append(child_schema.attribute(name))
        agg_name = self.aggregate.output_name(self.agg_column.qualified)
        attrs.append(Attribute(agg_name, NUMERIC))
        return RelationSchema("γ", attrs)

    def __repr__(self) -> str:  # pragma: no cover
        cols = ", ".join(c.qualified for c in self.group_columns)
        return f"GroupBy([{cols}], {self.aggregate.value}({self.agg_column.qualified}))"


# -- canonical fingerprints -----------------------------------------------------

def canonical_form(value: object) -> object:
    """A deterministic, hashable, nested-tuple encoding of an AST value.

    Every operator node and predicate operand in a query is a frozen
    dataclass over strings, numbers, enums and tuples, so one structural
    recursion covers the whole tree.  Two queries get the same canonical
    form exactly when they are the same tree — same operators, aliases,
    predicates and constants — regardless of how the objects were built
    (parsed from SQL, constructed programmatically, round-tripped through a
    plan).  Value *types* are part of the encoding (``1`` and ``1.0`` encode
    differently), matching the bit-identity contract of the storage layer.
    """
    if is_dataclass(value) and not isinstance(value, type):
        return (type(value).__name__,) + tuple(
            (f.name, canonical_form(getattr(value, f.name))) for f in fields(value)
        )
    if isinstance(value, enum.Enum):
        return (type(value).__name__, value.name)
    if isinstance(value, (list, tuple)):
        return tuple(canonical_form(item) for item in value)
    return (type(value).__name__, repr(value))


def query_fingerprint(query: QueryNode) -> str:
    """Canonical hex fingerprint of a query AST.

    The single identity used for query-shaped keying everywhere: the
    serving layer's result / plan cache keys (crossed with α and the
    database's publication epoch) and :attr:`QueryResult.fingerprint` both
    carry it.  Computed from :func:`canonical_form`, so it is stable across
    processes and sessions (no ``id()``/hash-seed dependence) and
    insensitive to how the AST object was produced.
    """
    if not isinstance(query, QueryNode):
        raise QueryError(
            f"query_fingerprint expects a QueryNode, got {type(query).__name__}"
        )
    payload = repr(canonical_form(query)).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


# -- attribute resolution -------------------------------------------------------

def resolve_attribute(schema: RelationSchema, ref: AttrRef) -> str:
    """Resolve an :class:`AttrRef` against an output schema.

    Accepts an exact qualified match (``alias.attr``), or an unqualified
    attribute name when it is unambiguous among the schema's attributes.
    The actual matching lives in
    :func:`repro.algebra.predicates.resolve_position` so the row and
    vectorized predicate paths share one implementation.
    """
    return schema.attribute_names[resolve_position(schema, ref)]


def condition_on(schema: RelationSchema, condition: Conjunction) -> Conjunction:
    """Re-resolve every attribute reference in ``condition`` against ``schema``.

    Returns an equivalent condition whose references use the schema's exact
    qualified names — handy before evaluating or relaxing the condition.
    """
    resolved: List[Comparison] = []
    for comparison in condition:
        left = comparison.left
        right = comparison.right
        if isinstance(left, AttrRef):
            left = AttrRef.parse(resolve_attribute(schema, left))
        if isinstance(right, AttrRef):
            right = AttrRef.parse(resolve_attribute(schema, right))
        resolved.append(Comparison(left, comparison.op, right))
    return Conjunction.of(resolved)
