"""Query relaxation ``Q^r`` (Section 3.1).

The relaxed query ``Q^r`` replaces every selection ``σ_{A=c}`` by
``σ_{|dis_A(A,c)| <= r}`` and every ``σ_{A=B}`` by ``σ_{|dis_A(A,B)| <= 2r}``.
The relevance distance of an approximate answer ``s`` is

    δ_rel(Q, D, s) = min_{r>=0} max(r, min_{t in Q^r(D)} d(s, t)).

Evaluating ``Q^r(D)`` for every ``r`` directly is intractable, but the
minimisation collapses to a per-tuple form: writing ``r(t)`` for the smallest
relaxation admitting a candidate tuple ``t`` (the worst violation of ``Q``'s
relaxable selections by ``t``),

    δ_rel(Q, D, s) = min_t max(r(t), d(s, t)),

where ``t`` ranges over the *relaxation candidates* — the result of ``Q``
with its relaxable selections removed.  Selections on attributes with the
trivial distance can never be usefully relaxed (any finite ``r`` keeps them
equivalent to equality), so they stay as hard conditions; this keeps the
candidate set small (joins on key attributes are preserved) and evaluation
tractable.

This module rewrites a query into its *candidate query* plus a function that
computes ``r(t)`` for each candidate tuple.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from ..errors import QueryError
from ..relational.distance import INFINITY
from ..relational.relation import Row
from ..relational.schema import DatabaseSchema, RelationSchema
from .ast import (
    Difference,
    GroupBy,
    Product,
    Project,
    QueryNode,
    Rename,
    Scan,
    Select,
    Union,
    condition_on,
    resolve_attribute,
)
from .predicates import CompareOp, Comparison, Conjunction


def is_relaxable(comparison: Comparison, schema: RelationSchema) -> bool:
    """Whether relaxing this comparison can admit additional tuples.

    A comparison is relaxable when at least one attribute it mentions has a
    non-trivial distance function (numeric, string-prefix, ...).  Comparisons
    purely over trivial-distance attributes (IDs, categories) are kept as
    hard conditions — relaxing them by any finite ``r`` changes nothing.
    """
    for ref in comparison.attributes():
        name = resolve_attribute(schema, ref)
        if schema.attribute(name).distance.numeric or schema.attribute(name).distance.name != "trivial":
            return True
    return False


@dataclass
class RelaxationSplit:
    """A selection condition split into hard and relaxable parts."""

    hard: Conjunction
    relaxable: Conjunction


def split_condition(condition: Conjunction, schema: RelationSchema) -> RelaxationSplit:
    """Split ``condition`` into hard and relaxable comparisons w.r.t. ``schema``."""
    hard: List[Comparison] = []
    relaxable: List[Comparison] = []
    for comparison in condition:
        if is_relaxable(comparison, schema):
            relaxable.append(comparison)
        else:
            hard.append(comparison)
    return RelaxationSplit(Conjunction.of(hard), Conjunction.of(relaxable))


def relaxed_query(node: QueryNode, db_schema: DatabaseSchema) -> Tuple[QueryNode, List[Comparison]]:
    """Build the candidate query of ``node`` and collect its relaxable selections.

    The candidate query keeps all structure and hard selections of ``node``
    but drops relaxable selections; the dropped comparisons are returned so
    that :func:`violation` can compute per-tuple relaxation requirements.
    """
    dropped: List[Comparison] = []

    def rewrite(current: QueryNode) -> QueryNode:
        if isinstance(current, Scan):
            return current
        if isinstance(current, Select):
            child = rewrite(current.child)
            schema = child.output_schema(db_schema)
            split = split_condition(condition_on(schema, current.condition), schema)
            dropped.extend(split.relaxable)
            if split.hard:
                return Select(child, split.hard)
            return child
        if isinstance(current, Project):
            return Project(rewrite(current.child), current.columns)
        if isinstance(current, Product):
            return Product(rewrite(current.left), rewrite(current.right))
        if isinstance(current, Union):
            return Union(rewrite(current.left), rewrite(current.right))
        if isinstance(current, Difference):
            # Only the positive side is relaxed; the negated side keeps its
            # selections so that relaxation never *adds* tuples to the
            # subtracted set (that would shrink the candidate set unsoundly).
            return Difference(rewrite(current.left), current.right)
        if isinstance(current, Rename):
            return Rename(rewrite(current.child), current.mapping)
        if isinstance(current, GroupBy):
            return GroupBy(
                rewrite(current.child), current.group_columns, current.aggregate, current.agg_column
            )
        raise QueryError(f"unsupported node {type(current).__name__}")

    return rewrite(node), dropped


class RelaxationOracle:
    """Computes the relaxation requirement ``r(t)`` of candidate tuples.

    Built from the relaxable comparisons dropped by :func:`relaxed_query`,
    evaluated against the *pre-projection* attribute values of a candidate
    tuple.  In practice the candidate query is evaluated without its final
    projection so every referenced attribute is available; see
    :mod:`repro.accuracy.rc`.
    """

    def __init__(self, schema: RelationSchema, comparisons: Sequence[Comparison]) -> None:
        self.schema = schema
        self._evaluators: List[Callable[[Row], float]] = [
            self._compile(comparison.normalized()) for comparison in comparisons
        ]

    def _compile(self, comparison: Comparison) -> Callable[[Row], float]:
        schema = self.schema
        if comparison.is_attr_const:
            ref = comparison.attributes()[0]
            name = resolve_attribute(schema, ref)
            position = schema.position(name)
            distance = schema.attribute(name).distance
            constant = comparison.constant()
            op = comparison.op
            return lambda row: _attr_const_violation(row[position], op, constant, distance)
        if comparison.is_attr_attr:
            left, right = comparison.attributes()
            lpos = schema.position(resolve_attribute(schema, left))
            rpos = schema.position(resolve_attribute(schema, right))
            distance = schema.attribute(resolve_attribute(schema, left)).distance
            op = comparison.op
            # Both sides may be relaxed by r, so the admissible violation is 2r;
            # the per-tuple requirement is therefore half the raw violation.
            return lambda row: _attr_attr_violation(row[lpos], row[rpos], op, distance) / 2.0
        raise QueryError(f"cannot compile comparison {comparison}")

    def requirement(self, row: Row) -> float:
        """``r(t)`` — the smallest relaxation admitting tuple ``row``."""
        worst = 0.0
        for evaluator in self._evaluators:
            violation = evaluator(row)
            if violation > worst:
                worst = violation
            if worst == INFINITY:
                return INFINITY
        return worst


def _attr_const_violation(value, op: CompareOp, constant, distance) -> float:
    """How far ``value`` violates ``value op constant`` (0 when satisfied).

    Violations are measured with the attribute's distance function so they
    are in the same units as tuple distances and template resolutions (e.g.
    range-scaled for numeric attributes).
    """
    if op is CompareOp.EQ:
        return distance(value, constant)
    if op is CompareOp.NE:
        return 0.0 if value != constant else INFINITY
    if value is None or constant is None:
        return INFINITY
    if op.evaluate(value, constant):
        return 0.0
    return distance(value, constant)


def _attr_attr_violation(left, right, op: CompareOp, distance) -> float:
    """How far ``left op right`` is violated (0 when satisfied)."""
    if op is CompareOp.EQ:
        return distance(left, right)
    if op is CompareOp.NE:
        return 0.0 if left != right else INFINITY
    if left is None or right is None:
        return INFINITY
    if op.evaluate(left, right):
        return 0.0
    return distance(left, right)
