"""Tableau representation of SPC queries (Section 5).

The tableau ``(T(Q), u(Q))`` of an SPC query ``Q`` contains one *tuple
template* per relation atom.  Each cell of a template is a *term*: either a
constant from ``Q`` (the atom's attribute is equated to a constant by the
selection condition) or a *variable*.  Variables are shared across cells that
the condition equates (``A = B`` join predicates), so computing ``Q(D)``
amounts to fetching tuples that instantiate the templates consistently.

The chase (``repro.core.chase``) operates on this structure: it marks
variables and tuple templates as *exactly* or *approximately* covered as
access constraints/templates are applied.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

from ..errors import QueryError
from ..relational.schema import DatabaseSchema
from .predicates import AttrRef, CompareOp, Comparison, Const
from .spc import SPCQuery


@dataclass(frozen=True)
class Variable:
    """A tableau variable, shared by all cells equated by the query."""

    vid: int

    def __str__(self) -> str:  # pragma: no cover - debug helper
        return f"x{self.vid}"


@dataclass(frozen=True)
class Constant:
    """A constant cell value originating from the query."""

    value: object

    def __str__(self) -> str:  # pragma: no cover - debug helper
        return repr(self.value)


Term = Union[Variable, Constant]


@dataclass
class TupleTemplate:
    """One tuple template: the cells of a relation atom, keyed by attribute."""

    alias: str
    relation: str
    cells: Dict[str, Term]

    def variables(self) -> List[Variable]:
        return [term for term in self.cells.values() if isinstance(term, Variable)]

    def term(self, attribute: str) -> Term:
        try:
            return self.cells[attribute]
        except KeyError:
            raise QueryError(
                f"atom {self.alias!r} ({self.relation}) has no cell for attribute {attribute!r}"
            ) from None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        cells = ", ".join(f"{a}={t}" for a, t in self.cells.items())
        return f"{self.relation}[{self.alias}]({cells})"


@dataclass
class Tableau:
    """The tableau ``(T(Q), u(Q))`` of an SPC query.

    Attributes:
        templates: one :class:`TupleTemplate` per relation atom.
        output: the terms of the output tuple ``u(Q)`` (projection columns).
        constraints: residual comparisons that are *not* representable as
            cell constants or shared variables (inequalities such as
            ``price <= 95``); the chase does not need them, but the
            evaluation plan re-applies them.
    """

    templates: List[TupleTemplate]
    output: List[Tuple[AttrRef, Term]]
    constraints: List[Comparison]

    def template_for(self, alias: str) -> TupleTemplate:
        for template in self.templates:
            if template.alias == alias:
                return template
        raise QueryError(f"no tuple template for alias {alias!r}")

    def all_variables(self) -> List[Variable]:
        """All distinct variables appearing in the tableau."""
        seen: Dict[Variable, None] = {}
        for template in self.templates:
            for variable in template.variables():
                seen.setdefault(variable, None)
        return list(seen)

    def cells_of(self, variable: Variable) -> List[Tuple[str, str]]:
        """All ``(alias, attribute)`` cells holding ``variable``."""
        cells = []
        for template in self.templates:
            for attribute, term in template.cells.items():
                if term == variable:
                    cells.append((template.alias, attribute))
        return cells

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Tableau({len(self.templates)} templates, {len(self.all_variables())} variables)"


class _UnionFind:
    """Union-find over (alias, attribute) cells, used to share variables."""

    def __init__(self) -> None:
        self._parent: Dict[Tuple[str, str], Tuple[str, str]] = {}

    def find(self, cell: Tuple[str, str]) -> Tuple[str, str]:
        self._parent.setdefault(cell, cell)
        root = cell
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[cell] != root:
            self._parent[cell], cell = root, self._parent[cell]
        return root

    def union(self, a: Tuple[str, str], b: Tuple[str, str]) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb


def build_tableau(query: SPCQuery, db_schema: DatabaseSchema) -> Tableau:
    """Construct the tableau of an SPC query in canonical form.

    Equality predicates ``A = B`` merge the two cells into one shared
    variable; equality predicates ``A = c`` turn the cell into the constant
    ``c``; all other comparisons become residual constraints.
    """
    # Collect all cells that the query uses per atom (condition + output).
    used: Dict[str, List[str]] = {alias: query.attributes_of(alias) for alias in query.atoms}
    # Make sure every atom has at least one cell so it appears in the tableau.
    for alias, relation in query.atoms.items():
        if not used[alias]:
            used[alias] = list(db_schema.relation(relation).attribute_names[:1])

    uf = _UnionFind()
    constants: Dict[Tuple[str, str], object] = {}
    residual: List[Comparison] = []

    for comparison in query.condition:
        comparison = comparison.normalized()
        if comparison.op is CompareOp.EQ and comparison.is_attr_attr:
            left, right = comparison.attributes()
            if left.alias is None or right.alias is None:
                residual.append(comparison)
                continue
            uf.union((left.alias, left.attribute), (right.alias, right.attribute))
        elif comparison.op is CompareOp.EQ and comparison.is_attr_const:
            ref = comparison.attributes()[0]
            if ref.alias is None:
                residual.append(comparison)
                continue
            constants[(ref.alias, ref.attribute)] = comparison.constant()
        else:
            residual.append(comparison)

    # Propagate constants across equivalence classes.
    class_constant: Dict[Tuple[str, str], object] = {}
    for cell, value in constants.items():
        root = uf.find(cell)
        if root in class_constant and class_constant[root] != value:
            # Two different constants forced onto the same cell: the query is
            # unsatisfiable; keep one and record the conflict as residual so
            # evaluation returns the empty answer.
            residual.append(
                Comparison(AttrRef(cell[0], cell[1]), CompareOp.EQ, Const(value))
            )
            continue
        class_constant[root] = value

    # Assign variables to the remaining equivalence classes.
    variable_ids = itertools.count(1)
    class_variable: Dict[Tuple[str, str], Variable] = {}

    def term_for(cell: Tuple[str, str]) -> Term:
        root = uf.find(cell)
        if root in class_constant:
            return Constant(class_constant[root])
        if root not in class_variable:
            class_variable[root] = Variable(next(variable_ids))
        return class_variable[root]

    templates: List[TupleTemplate] = []
    for alias, relation in query.atoms.items():
        cells = {attribute: term_for((alias, attribute)) for attribute in used[alias]}
        templates.append(TupleTemplate(alias=alias, relation=relation, cells=cells))

    output_terms: List[Tuple[AttrRef, Term]] = []
    for ref in query.output_or_all(db_schema):
        if ref.alias is None:
            raise QueryError(f"output column {ref.qualified!r} must be alias-qualified")
        output_terms.append((ref, term_for((ref.alias, ref.attribute))))

    return Tableau(templates=templates, output=output_terms, constraints=residual)
