"""Aggregate functions for RA_aggr queries.

The paper's ``RA_aggr`` extends RA with a group-by construct
``gpBy(Q', X, agg(V))`` where ``agg`` is one of ``min``, ``max``, ``avg``,
``sum`` or ``count``.  This module defines those functions, including
*weighted* variants used when the aggregate is evaluated over representative
tuples carrying duplicate counts (Section 7: for ``sum``/``avg``/``count``
the access-template index returns the number of occurrences each
representative stands for).
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence, Tuple

from ..errors import QueryError


class AggregateFunction(enum.Enum):
    """The five aggregate functions of RA_aggr."""

    MIN = "min"
    MAX = "max"
    SUM = "sum"
    COUNT = "count"
    AVG = "avg"

    @classmethod
    def parse(cls, name: str) -> "AggregateFunction":
        try:
            return cls(name.strip().lower())
        except ValueError:
            raise QueryError(f"unknown aggregate function {name!r}") from None

    @property
    def needs_counts(self) -> bool:
        """Whether bag multiplicities matter (Section 7's index extension)."""
        return self in (AggregateFunction.SUM, AggregateFunction.COUNT, AggregateFunction.AVG)

    # -- evaluation ----------------------------------------------------------
    def apply(self, values: Sequence[object]) -> Optional[object]:
        """Aggregate a plain sequence of values (bag semantics, weight 1)."""
        return self.apply_weighted([(v, 1.0) for v in values])

    def apply_weighted(self, weighted_values: Sequence[Tuple[object, float]]) -> Optional[object]:
        """Aggregate ``(value, weight)`` pairs.

        ``weight`` is the number of original tuples a representative stands
        for.  ``min``/``max`` ignore weights; ``count`` sums them; ``sum`` and
        ``avg`` scale each value by its weight.
        Returns ``None`` on an empty input (SQL-style).
        """
        pairs = [(v, w) for v, w in weighted_values if v is not None or self is AggregateFunction.COUNT]
        if not pairs:
            return None
        if self is AggregateFunction.MIN:
            return min(v for v, _ in pairs)
        if self is AggregateFunction.MAX:
            return max(v for v, _ in pairs)
        if self is AggregateFunction.COUNT:
            return sum(w for _, w in pairs)
        if self is AggregateFunction.SUM:
            return sum(float(v) * w for v, w in pairs)
        if self is AggregateFunction.AVG:
            total_weight = sum(w for _, w in pairs)
            if total_weight == 0:
                return None
            return sum(float(v) * w for v, w in pairs) / total_weight
        raise QueryError(f"unsupported aggregate {self}")  # pragma: no cover

    def output_name(self, attribute: str) -> str:
        """Conventional output column name, e.g. ``count(address)``."""
        return f"{self.value}({attribute})"
