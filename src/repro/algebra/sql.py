"""A small SQL-ish parser producing RA / RA_aggr ASTs.

Supported grammar (enough for every query shape used in the paper):

.. code-block:: text

    query      :=  select ( ("union" | "except") select )*
    select     :=  "select" select_list
                   "from" table ("," table)*
                   [ "where" comparison ("and" comparison)* ]
                   [ "group" "by" column ("," column)* ]
    select_list:=  item ("," item)*
    item       :=  column | agg "(" column ")"
    table      :=  name [ "as" alias ]
    comparison :=  operand op operand       (op in =, !=, <>, <=, <, >=, >)
    operand    :=  number | 'string' | "string" | column
    column     :=  [alias "."] name

``union`` and ``except`` associate left-to-right.  Aggregate selects follow
the paper's ``gpBy(Q', X, agg(V))`` shape: one aggregate column plus the
group-by columns.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union as TypingUnion

from ..errors import ParseError
from .aggregates import AggregateFunction
from .ast import Difference, GroupBy, Product, Project, QueryNode, Scan, Select, Union
from .predicates import AttrRef, CompareOp, Comparison, Conjunction, Const

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<string>'[^']*'|"[^"]*")
      | (?P<number>-?\d+(?:\.\d+)?)
      | (?P<op><=|>=|<>|!=|=|<|>)
      | (?P<punct>[(),])
      | (?P<word>[A-Za-z_][A-Za-z_0-9]*(?:\.[A-Za-z_][A-Za-z_0-9]*)?)
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select",
    "from",
    "where",
    "and",
    "group",
    "by",
    "as",
    "union",
    "except",
}

_AGGREGATES = {"min", "max", "sum", "count", "avg"}


@dataclass(frozen=True)
class _Token:
    kind: str
    value: str


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise ParseError(f"cannot tokenize query near {remainder[:30]!r}")
        pos = match.end()
        for kind in ("string", "number", "op", "punct", "word"):
            value = match.group(kind)
            if value is not None:
                tokens.append(_Token(kind, value))
                break
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: List[_Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers -------------------------------------------------------
    def _peek(self) -> Optional[_Token]:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of query")
        self._pos += 1
        return token

    def _accept_word(self, word: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "word" and token.value.lower() == word:
            self._pos += 1
            return True
        return False

    def _expect_word(self, word: str) -> None:
        if not self._accept_word(word):
            token = self._peek()
            found = token.value if token else "end of query"
            raise ParseError(f"expected {word!r}, found {found!r}")

    def _expect_punct(self, symbol: str) -> None:
        token = self._next()
        if token.kind != "punct" or token.value != symbol:
            raise ParseError(f"expected {symbol!r}, found {token.value!r}")

    # -- grammar ---------------------------------------------------------------
    def parse_query(self) -> QueryNode:
        node = self.parse_select()
        while True:
            if self._accept_word("union"):
                node = Union(node, self.parse_select())
            elif self._accept_word("except"):
                node = Difference(node, self.parse_select())
            else:
                break
        if self._peek() is not None:
            raise ParseError(f"unexpected trailing token {self._peek().value!r}")
        return node

    def parse_select(self) -> QueryNode:
        self._expect_word("select")
        select_items = self._parse_select_list()
        self._expect_word("from")
        tables = self._parse_from_list()
        condition = Conjunction.true()
        if self._accept_word("where"):
            condition = self._parse_condition()
        group_columns: List[AttrRef] = []
        if self._accept_word("group"):
            self._expect_word("by")
            group_columns = self._parse_column_list()
        return self._assemble(select_items, tables, condition, group_columns)

    def _parse_select_list(self) -> List[TypingUnion[AttrRef, Tuple[AggregateFunction, AttrRef]]]:
        items: List[TypingUnion[AttrRef, Tuple[AggregateFunction, AttrRef]]] = []
        while True:
            token = self._next()
            if token.kind != "word":
                raise ParseError(f"expected a column or aggregate, found {token.value!r}")
            word = token.value
            nxt = self._peek()
            if word.lower() in _AGGREGATES and nxt is not None and nxt.value == "(":
                self._expect_punct("(")
                column_token = self._next()
                if column_token.kind != "word":
                    raise ParseError(f"expected column inside aggregate, found {column_token.value!r}")
                self._expect_punct(")")
                items.append((AggregateFunction.parse(word), AttrRef.parse(column_token.value)))
            else:
                items.append(AttrRef.parse(word))
            nxt = self._peek()
            if nxt is not None and nxt.kind == "punct" and nxt.value == ",":
                self._pos += 1
                continue
            break
        return items

    def _parse_from_list(self) -> List[Scan]:
        tables: List[Scan] = []
        while True:
            token = self._next()
            if token.kind != "word":
                raise ParseError(f"expected a relation name, found {token.value!r}")
            relation = token.value
            alias: Optional[str] = None
            if self._accept_word("as"):
                alias_token = self._next()
                if alias_token.kind != "word":
                    raise ParseError(f"expected alias after 'as', found {alias_token.value!r}")
                alias = alias_token.value
            else:
                nxt = self._peek()
                if (
                    nxt is not None
                    and nxt.kind == "word"
                    and nxt.value.lower() not in _KEYWORDS
                    and "." not in nxt.value
                ):
                    alias = self._next().value
            tables.append(Scan(relation, alias))
            nxt = self._peek()
            if nxt is not None and nxt.kind == "punct" and nxt.value == ",":
                self._pos += 1
                continue
            break
        return tables

    def _parse_condition(self) -> Conjunction:
        comparisons = [self._parse_comparison()]
        while self._accept_word("and"):
            comparisons.append(self._parse_comparison())
        return Conjunction.of(comparisons)

    def _parse_comparison(self) -> Comparison:
        left = self._parse_operand()
        op_token = self._next()
        if op_token.kind != "op":
            raise ParseError(f"expected a comparison operator, found {op_token.value!r}")
        op = CompareOp.parse(op_token.value)
        right = self._parse_operand()
        return Comparison(left, op, right)

    def _parse_operand(self):
        token = self._next()
        if token.kind == "number":
            value = float(token.value) if "." in token.value else int(token.value)
            return Const(value)
        if token.kind == "string":
            return Const(token.value[1:-1])
        if token.kind == "word":
            return AttrRef.parse(token.value)
        raise ParseError(f"unexpected operand {token.value!r}")

    def _parse_column_list(self) -> List[AttrRef]:
        columns: List[AttrRef] = []
        while True:
            token = self._next()
            if token.kind != "word":
                raise ParseError(f"expected a column, found {token.value!r}")
            columns.append(AttrRef.parse(token.value))
            nxt = self._peek()
            if nxt is not None and nxt.kind == "punct" and nxt.value == ",":
                self._pos += 1
                continue
            break
        return columns

    # -- assembly -----------------------------------------------------------------
    @staticmethod
    def _assemble(
        select_items: Sequence[TypingUnion[AttrRef, Tuple[AggregateFunction, AttrRef]]],
        tables: Sequence[Scan],
        condition: Conjunction,
        group_columns: Sequence[AttrRef],
    ) -> QueryNode:
        node: Optional[QueryNode] = None
        for scan in tables:
            node = scan if node is None else Product(node, scan)
        if node is None:
            raise ParseError("query has no relations in its from clause")
        if condition:
            node = Select(node, condition)

        aggregates = [item for item in select_items if isinstance(item, tuple)]
        plain = [item for item in select_items if isinstance(item, AttrRef)]

        if aggregates:
            if len(aggregates) != 1:
                raise ParseError("only a single aggregate per query is supported (gpBy form)")
            aggregate, agg_column = aggregates[0]
            group = tuple(group_columns) if group_columns else tuple(plain)
            if set(c.qualified for c in plain) - set(c.qualified for c in group):
                raise ParseError("non-aggregated select columns must appear in group by")
            return GroupBy(node, group, aggregate, agg_column)

        if group_columns:
            raise ParseError("group by without an aggregate in the select list")
        if plain:
            node = Project(node, tuple(plain))
        return node


def parse_query(text: str) -> QueryNode:
    """Parse a SQL-ish query string into an RA / RA_aggr AST."""
    tokens = _tokenize(text)
    if not tokens:
        raise ParseError("empty query")
    return _Parser(tokens).parse_query()
