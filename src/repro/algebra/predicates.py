"""Selection predicates.

Queries use conjunctions of atomic comparisons between attribute references
and constants (``σ_{A=c}``, ``σ_{A<=c}``) or between two attribute references
(``σ_{A=B}``, ``σ_{A<=B}``), exactly the forms the paper's accuracy measure
and relaxation machinery handle.

An :class:`AttrRef` names an attribute of the query's *output* (or of an
intermediate operator's output) by its qualified name ``alias.attribute``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..errors import QueryError


@dataclass(frozen=True)
class AttrRef:
    """Reference to an attribute, optionally qualified by a relation alias."""

    alias: Optional[str]
    attribute: str

    @property
    def qualified(self) -> str:
        """``alias.attribute`` when qualified, else just ``attribute``."""
        return f"{self.alias}.{self.attribute}" if self.alias else self.attribute

    def __str__(self) -> str:  # pragma: no cover - debug helper
        return self.qualified

    @classmethod
    def parse(cls, text: str) -> "AttrRef":
        """Parse ``"alias.attr"`` or ``"attr"`` into an :class:`AttrRef`."""
        if "." in text:
            alias, attr = text.split(".", 1)
            return cls(alias, attr)
        return cls(None, text)


@dataclass(frozen=True)
class Const:
    """A literal constant appearing in a query."""

    value: object

    def __str__(self) -> str:  # pragma: no cover - debug helper
        return repr(self.value)


Operand = Union[AttrRef, Const]


class CompareOp(enum.Enum):
    """Comparison operators supported in selection conditions."""

    EQ = "="
    NE = "!="
    LE = "<="
    LT = "<"
    GE = ">="
    GT = ">"

    def evaluate(self, left: object, right: object) -> bool:
        """Apply the operator to two concrete values."""
        if self is CompareOp.EQ:
            return left == right
        if self is CompareOp.NE:
            return left != right
        if left is None or right is None:
            return False
        try:
            if self is CompareOp.LE:
                return left <= right  # type: ignore[operator]
            if self is CompareOp.LT:
                return left < right  # type: ignore[operator]
            if self is CompareOp.GE:
                return left >= right  # type: ignore[operator]
            if self is CompareOp.GT:
                return left > right  # type: ignore[operator]
        except TypeError:
            return False
        raise QueryError(f"unsupported comparison operator {self}")

    @property
    def is_equality(self) -> bool:
        return self is CompareOp.EQ

    @property
    def is_inequality_range(self) -> bool:
        """True for the order comparisons (<=, <, >=, >)."""
        return self in (CompareOp.LE, CompareOp.LT, CompareOp.GE, CompareOp.GT)

    @classmethod
    def parse(cls, symbol: str) -> "CompareOp":
        for op in cls:
            if op.value == symbol:
                return op
        if symbol == "<>":
            return cls.NE
        if symbol == "==":
            return cls.EQ
        raise QueryError(f"unknown comparison operator {symbol!r}")


@dataclass(frozen=True)
class Comparison:
    """One atomic comparison ``left op right``."""

    left: Operand
    op: CompareOp
    right: Operand

    def __post_init__(self) -> None:
        if isinstance(self.left, Const) and isinstance(self.right, Const):
            raise QueryError("comparison between two constants is not a selection")

    # -- structural helpers --------------------------------------------------
    @property
    def is_attr_const(self) -> bool:
        """True for ``A op c`` (in either written order)."""
        return isinstance(self.left, AttrRef) ^ isinstance(self.right, AttrRef)

    @property
    def is_attr_attr(self) -> bool:
        """True for ``A op B``."""
        return isinstance(self.left, AttrRef) and isinstance(self.right, AttrRef)

    def normalized(self) -> "Comparison":
        """Rewrite so an attribute is always on the left for attr/const forms."""
        if isinstance(self.left, Const) and isinstance(self.right, AttrRef):
            flipped = {
                CompareOp.LE: CompareOp.GE,
                CompareOp.LT: CompareOp.GT,
                CompareOp.GE: CompareOp.LE,
                CompareOp.GT: CompareOp.LT,
                CompareOp.EQ: CompareOp.EQ,
                CompareOp.NE: CompareOp.NE,
            }[self.op]
            return Comparison(self.right, flipped, self.left)
        return self

    def attributes(self) -> List[AttrRef]:
        """All attribute references used by this comparison."""
        refs = []
        for operand in (self.left, self.right):
            if isinstance(operand, AttrRef):
                refs.append(operand)
        return refs

    def constant(self) -> Optional[object]:
        """The constant operand for attr/const comparisons, else ``None``."""
        for operand in (self.left, self.right):
            if isinstance(operand, Const):
                return operand.value
        return None

    def __str__(self) -> str:  # pragma: no cover - debug helper
        return f"{self.left} {self.op.value} {self.right}"


@dataclass(frozen=True)
class Conjunction:
    """A conjunction of atomic comparisons (the paper's selection condition)."""

    comparisons: Tuple[Comparison, ...]

    @classmethod
    def of(cls, comparisons: Sequence[Comparison]) -> "Conjunction":
        return cls(tuple(comparisons))

    @classmethod
    def true(cls) -> "Conjunction":
        """The empty (always-true) condition."""
        return cls(())

    def __iter__(self):
        return iter(self.comparisons)

    def __len__(self) -> int:
        return len(self.comparisons)

    def __bool__(self) -> bool:
        return bool(self.comparisons)

    def and_also(self, other: "Conjunction") -> "Conjunction":
        """The conjunction of two conditions."""
        return Conjunction(self.comparisons + other.comparisons)

    def attributes(self) -> List[AttrRef]:
        """All attribute references mentioned anywhere in the condition."""
        refs: List[AttrRef] = []
        for comparison in self.comparisons:
            refs.extend(comparison.attributes())
        return refs

    def equality_comparisons(self) -> List[Comparison]:
        return [c for c in self.comparisons if c.op.is_equality]

    def __str__(self) -> str:  # pragma: no cover - debug helper
        if not self.comparisons:
            return "true"
        return " and ".join(str(c) for c in self.comparisons)
