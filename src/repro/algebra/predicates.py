"""Selection predicates.

Queries use conjunctions of atomic comparisons between attribute references
and constants (``σ_{A=c}``, ``σ_{A<=c}``) or between two attribute references
(``σ_{A=B}``, ``σ_{A<=B}``), exactly the forms the paper's accuracy measure
and relaxation machinery handle.

An :class:`AttrRef` names an attribute of the query's *output* (or of an
intermediate operator's output) by its qualified name ``alias.attribute``.

Besides the classic per-row evaluation (:meth:`CompareOp.evaluate`), every
comparison supports a **vectorized path**: :meth:`Comparison.mask` /
:meth:`Conjunction.mask` evaluate the condition column-at-a-time over a
storage backend (:class:`repro.relational.store.Store`) and return a 0/1
byte mask, one byte per row.  Column-at-a-time evaluation never materializes
row tuples and dispatches one tight loop per comparison instead of one
Python call per row, which is what makes column-backed selection fast;
consumers that need arbitrary per-row callables simply keep using the row
path (:meth:`repro.relational.relation.Relation.select` accepts both).
"""

from __future__ import annotations

import enum
from array import array
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..errors import QueryError
from ..relational.schema import RelationSchema
from ..relational.store import Store, all_ones, and_masks


@dataclass(frozen=True)
class AttrRef:
    """Reference to an attribute, optionally qualified by a relation alias."""

    alias: Optional[str]
    attribute: str

    @property
    def qualified(self) -> str:
        """``alias.attribute`` when qualified, else just ``attribute``."""
        return f"{self.alias}.{self.attribute}" if self.alias else self.attribute

    def __str__(self) -> str:  # pragma: no cover - debug helper
        return self.qualified

    @classmethod
    def parse(cls, text: str) -> "AttrRef":
        """Parse ``"alias.attr"`` or ``"attr"`` into an :class:`AttrRef`."""
        if "." in text:
            alias, attr = text.split(".", 1)
            return cls(alias, attr)
        return cls(None, text)


@dataclass(frozen=True)
class Const:
    """A literal constant appearing in a query."""

    value: object

    def __str__(self) -> str:  # pragma: no cover - debug helper
        return repr(self.value)


Operand = Union[AttrRef, Const]


def resolve_position(schema: RelationSchema, ref: AttrRef) -> int:
    """Column position of ``ref`` within ``schema``.

    The canonical attribute-resolution rules (exact qualified match, else
    unambiguous suffix match, with alias filtering), shared by the
    vectorized predicate path and :func:`repro.algebra.ast.resolve_attribute`
    (which delegates here; this module cannot import the AST module).
    """
    qualified = ref.qualified
    if qualified in schema:
        return schema.position(qualified)
    candidates = [
        name
        for name in schema.attribute_names
        if name == ref.attribute or name.endswith(f".{ref.attribute}")
    ]
    if ref.alias:
        candidates = [
            name
            for name in candidates
            if name.startswith(f"{ref.alias}.") or name == qualified
        ]
    if len(candidates) == 1:
        return schema.position(candidates[0])
    if not candidates:
        raise QueryError(
            f"attribute {qualified!r} not found in schema {list(schema.attribute_names)}"
        )
    raise QueryError(f"attribute {qualified!r} is ambiguous: matches {candidates}")


class CompareOp(enum.Enum):
    """Comparison operators supported in selection conditions."""

    EQ = "="
    NE = "!="
    LE = "<="
    LT = "<"
    GE = ">="
    GT = ">"

    def evaluate(self, left: object, right: object) -> bool:
        """Apply the operator to two concrete values."""
        if self is CompareOp.EQ:
            return left == right
        if self is CompareOp.NE:
            return left != right
        if left is None or right is None:
            return False
        try:
            if self is CompareOp.LE:
                return left <= right  # type: ignore[operator]
            if self is CompareOp.LT:
                return left < right  # type: ignore[operator]
            if self is CompareOp.GE:
                return left >= right  # type: ignore[operator]
            if self is CompareOp.GT:
                return left > right  # type: ignore[operator]
        except TypeError:
            return False
        raise QueryError(f"unsupported comparison operator {self}")

    def column_mask(self, values: Sequence[object], constant: object) -> bytearray:
        """Vectorized ``value op constant`` over a whole column.

        Returns a 0/1 byte per value with semantics identical to calling
        :meth:`evaluate` per value (``None`` and non-comparable pairs fail
        order comparisons).  The common all-comparable case runs as one
        tight generator pass — typed numeric buffers (``array.array``) skip
        the per-value ``None`` guard entirely; a ``TypeError`` from a
        mixed-type column falls back to the per-value path, which absorbs it
        pair by pair.
        """
        if self is CompareOp.EQ:
            return bytearray(v == constant for v in values)
        if self is CompareOp.NE:
            return bytearray(v != constant for v in values)
        if constant is None:
            return bytearray(len(values))
        if isinstance(values, array):
            # Typed buffer: every value is a real number, no None/TypeError
            # possible (NaN order comparisons are False, as under evaluate).
            if isinstance(constant, (int, float)):
                if self is CompareOp.LE:
                    return bytearray(v <= constant for v in values)
                if self is CompareOp.LT:
                    return bytearray(v < constant for v in values)
                if self is CompareOp.GE:
                    return bytearray(v >= constant for v in values)
                if self is CompareOp.GT:
                    return bytearray(v > constant for v in values)
            return bytearray(self.evaluate(v, constant) for v in values)
        try:
            if self is CompareOp.LE:
                return bytearray(v is not None and v <= constant for v in values)
            if self is CompareOp.LT:
                return bytearray(v is not None and v < constant for v in values)
            if self is CompareOp.GE:
                return bytearray(v is not None and v >= constant for v in values)
            if self is CompareOp.GT:
                return bytearray(v is not None and v > constant for v in values)
        except TypeError:
            return bytearray(self.evaluate(v, constant) for v in values)
        raise QueryError(f"unsupported comparison operator {self}")

    def column_mask_pair(
        self, left_values: Sequence[object], right_values: Sequence[object]
    ) -> bytearray:
        """Vectorized ``left op right`` over two aligned columns."""
        pairs = zip(left_values, right_values)
        if self is CompareOp.EQ:
            return bytearray(a == b for a, b in pairs)
        if self is CompareOp.NE:
            return bytearray(a != b for a, b in pairs)
        try:
            if self is CompareOp.LE:
                return bytearray(
                    a is not None and b is not None and a <= b for a, b in pairs
                )
            if self is CompareOp.LT:
                return bytearray(
                    a is not None and b is not None and a < b for a, b in pairs
                )
            if self is CompareOp.GE:
                return bytearray(
                    a is not None and b is not None and a >= b for a, b in pairs
                )
            if self is CompareOp.GT:
                return bytearray(
                    a is not None and b is not None and a > b for a, b in pairs
                )
        except TypeError:
            return bytearray(
                self.evaluate(a, b) for a, b in zip(left_values, right_values)
            )
        raise QueryError(f"unsupported comparison operator {self}")

    @property
    def is_equality(self) -> bool:
        return self is CompareOp.EQ

    @property
    def is_inequality_range(self) -> bool:
        """True for the order comparisons (<=, <, >=, >)."""
        return self in (CompareOp.LE, CompareOp.LT, CompareOp.GE, CompareOp.GT)

    @classmethod
    def parse(cls, symbol: str) -> "CompareOp":
        for op in cls:
            if op.value == symbol:
                return op
        if symbol == "<>":
            return cls.NE
        if symbol == "==":
            return cls.EQ
        raise QueryError(f"unknown comparison operator {symbol!r}")


@dataclass(frozen=True)
class Comparison:
    """One atomic comparison ``left op right``."""

    left: Operand
    op: CompareOp
    right: Operand

    def __post_init__(self) -> None:
        if isinstance(self.left, Const) and isinstance(self.right, Const):
            raise QueryError("comparison between two constants is not a selection")

    # -- structural helpers --------------------------------------------------
    @property
    def is_attr_const(self) -> bool:
        """True for ``A op c`` (in either written order)."""
        return isinstance(self.left, AttrRef) ^ isinstance(self.right, AttrRef)

    @property
    def is_attr_attr(self) -> bool:
        """True for ``A op B``."""
        return isinstance(self.left, AttrRef) and isinstance(self.right, AttrRef)

    def normalized(self) -> "Comparison":
        """Rewrite so an attribute is always on the left for attr/const forms."""
        if isinstance(self.left, Const) and isinstance(self.right, AttrRef):
            flipped = {
                CompareOp.LE: CompareOp.GE,
                CompareOp.LT: CompareOp.GT,
                CompareOp.GE: CompareOp.LE,
                CompareOp.GT: CompareOp.LT,
                CompareOp.EQ: CompareOp.EQ,
                CompareOp.NE: CompareOp.NE,
            }[self.op]
            return Comparison(self.right, flipped, self.left)
        return self

    def attributes(self) -> List[AttrRef]:
        """All attribute references used by this comparison."""
        refs = []
        for operand in (self.left, self.right):
            if isinstance(operand, AttrRef):
                refs.append(operand)
        return refs

    def constant(self) -> Optional[object]:
        """The constant operand for attr/const comparisons, else ``None``."""
        for operand in (self.left, self.right):
            if isinstance(operand, Const):
                return operand.value
        return None

    def mask(self, store: Store, schema: RelationSchema) -> bytearray:
        """Vectorized evaluation over a storage backend: one 0/1 byte per row.

        Pulls the referenced column buffer(s) straight from ``store`` (no
        row tuples) and applies :meth:`CompareOp.column_mask` /
        :meth:`CompareOp.column_mask_pair`.  Evaluation routes through
        :meth:`repro.relational.store.Store.eval_mask`, so a sharded backend
        evaluates each shard's buffers independently (in parallel when the
        shard pool allows) and stitches the per-shard masks back into global
        row order.  Semantics match per-row :meth:`CompareOp.evaluate`
        exactly on every backend.
        """
        comparison = self.normalized()
        if comparison.is_attr_const:
            ref = comparison.attributes()[0]
            position = resolve_position(schema, ref)
            constant = comparison.constant()
            op = comparison.op
            return store.eval_mask(lambda part: op.column_mask(part.column(position), constant))
        left, right = comparison.attributes()
        left_position = resolve_position(schema, left)
        right_position = resolve_position(schema, right)
        op = comparison.op
        return store.eval_mask(
            lambda part: op.column_mask_pair(
                part.column(left_position), part.column(right_position)
            )
        )

    def __str__(self) -> str:  # pragma: no cover - debug helper
        return f"{self.left} {self.op.value} {self.right}"


@dataclass(frozen=True)
class Conjunction:
    """A conjunction of atomic comparisons (the paper's selection condition)."""

    comparisons: Tuple[Comparison, ...]

    @classmethod
    def of(cls, comparisons: Sequence[Comparison]) -> "Conjunction":
        return cls(tuple(comparisons))

    @classmethod
    def true(cls) -> "Conjunction":
        """The empty (always-true) condition."""
        return cls(())

    def __iter__(self):
        return iter(self.comparisons)

    def __len__(self) -> int:
        return len(self.comparisons)

    def __bool__(self) -> bool:
        return bool(self.comparisons)

    def and_also(self, other: "Conjunction") -> "Conjunction":
        """The conjunction of two conditions."""
        return Conjunction(self.comparisons + other.comparisons)

    def attributes(self) -> List[AttrRef]:
        """All attribute references mentioned anywhere in the condition."""
        refs: List[AttrRef] = []
        for comparison in self.comparisons:
            refs.extend(comparison.attributes())
        return refs

    def equality_comparisons(self) -> List[Comparison]:
        return [c for c in self.comparisons if c.op.is_equality]

    def mask(self, store: Store, schema: RelationSchema) -> bytearray:
        """Vectorized conjunction: the AND of every comparison's mask.

        The empty conjunction selects every row.  Masks are combined with a
        single big-int AND per comparison (see
        :func:`repro.relational.store.and_masks`).  The whole conjunction is
        evaluated through :meth:`~repro.relational.store.Store.eval_mask`, so
        a sharded backend runs all comparisons shard-locally and stitches one
        combined mask per shard (one gather for the conjunction, not one per
        comparison).
        """
        if not self.comparisons:
            return all_ones(len(store))
        return store.eval_mask(lambda part: self._combined_mask(part, schema))

    def _combined_mask(self, store: Store, schema: RelationSchema) -> bytearray:
        """AND of the comparison masks over one (unsharded) store."""
        mask: Optional[bytearray] = None
        for comparison in self.comparisons:
            part = comparison.mask(store, schema)
            mask = part if mask is None else and_masks(mask, part)
            if not any(mask):
                break  # already empty; skip the remaining comparisons
        return mask if mask is not None else all_ones(len(store))

    def __str__(self) -> str:  # pragma: no cover - debug helper
        if not self.comparisons:
            return "true"
        return " and ".join(str(c) for c in self.comparisons)
