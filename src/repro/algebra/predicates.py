"""Selection predicates.

Queries use conjunctions of atomic comparisons between attribute references
and constants (``σ_{A=c}``, ``σ_{A<=c}``) or between two attribute references
(``σ_{A=B}``, ``σ_{A<=B}``), exactly the forms the paper's accuracy measure
and relaxation machinery handle.

An :class:`AttrRef` names an attribute of the query's *output* (or of an
intermediate operator's output) by its qualified name ``alias.attribute``.

Besides the classic per-row evaluation (:meth:`CompareOp.evaluate`), every
comparison supports a **vectorized path**: :meth:`Comparison.mask` /
:meth:`Conjunction.mask` evaluate the condition column-at-a-time over a
storage backend (:class:`repro.relational.store.Store`) and return a 0/1
byte mask, one byte per row.  Column-at-a-time evaluation never materializes
row tuples and dispatches one tight loop per comparison instead of one
Python call per row, which is what makes column-backed selection fast;
consumers that need arbitrary per-row callables simply keep using the row
path (:meth:`repro.relational.relation.Relation.select` accepts both).

**Fused chunked evaluation.**  A :class:`Conjunction` does not evaluate its
comparisons one whole column at a time; it compiles to a
:class:`MaskProgram` — one block-wise pass over the store in chunks of
:func:`get_mask_chunk_size` rows (a cache-friendly window, configurable via
:func:`set_mask_chunk_size` or per call) that *fuses* every comparison per
chunk.  Within each chunk the comparisons run in ascending order of their
*observed selectivity* (pass rates measured on the chunks evaluated so
far), and evaluation of the remaining comparisons short-circuits the moment
the chunk's accumulated mask goes all-zero — so a selective leading
predicate lets the engine skip most of the work of the others.  The whole
program routes through :meth:`repro.relational.store.Store.eval_mask`, so a
sharded store fuses per shard (in parallel when the shard pool allows) and
stitches per-shard masks back into global row order.  Results are
bit-identical to per-row :meth:`CompareOp.evaluate` at every chunk size on
every backend (AND is commutative and each comparison's chunk mask matches
its per-value semantics exactly).
"""

from __future__ import annotations

import enum
import threading
from array import array
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

from ..errors import QueryError
from ..relational.schema import RelationSchema
from ..relational.store import Store, all_ones, and_masks

# Rows per block of the fused chunked evaluation.  4096 keeps the working
# set (a handful of column slices plus masks) well inside L2 while leaving
# per-chunk Python overhead negligible.
DEFAULT_MASK_CHUNK_SIZE = 4096

_mask_chunk_size = DEFAULT_MASK_CHUNK_SIZE


def get_mask_chunk_size() -> int:
    """The process-wide chunk size used by fused mask evaluation."""
    return _mask_chunk_size


def set_mask_chunk_size(size: Optional[int]) -> int:
    """Set the fused-evaluation chunk size; returns the previous setting.

    ``None`` restores :data:`DEFAULT_MASK_CHUNK_SIZE`.  Any positive size is
    legal — results are identical at every chunk size; only the memory /
    short-circuit granularity changes.
    """
    global _mask_chunk_size
    previous = _mask_chunk_size
    if size is None:
        _mask_chunk_size = DEFAULT_MASK_CHUNK_SIZE
    else:
        size = int(size)
        if size <= 0:
            raise ValueError(f"mask chunk size must be positive, got {size}")
        _mask_chunk_size = size
    return previous


# ---------------------------------------------------------------------------
# Compiled-program cache (the serving layer's MaskProgram cache)
# ---------------------------------------------------------------------------
#
# Compiling a conjunction resolves every attribute reference against the
# schema and builds one binder per comparison.  A long-lived server answering
# the same query shapes over and over repeats that work per request; the
# bounded LRU below memoizes compiled programs by (condition, schema
# attribute names, chunk size).  Programs are safe to share: a MaskProgram
# holds only frozen binders and keeps its adaptive selectivity state local to
# each ``run_part`` call, so concurrent reuse across threads cannot race.
# The cache is off by default (capacity 0 — batch reproductions pay nothing);
# the serving facade turns it on.

_program_cache_lock = threading.Lock()
_program_cache: "OrderedDict[tuple, MaskProgram]" = OrderedDict()
_program_cache_capacity = 0
_program_cache_hits = 0
_program_cache_misses = 0


def get_program_cache_capacity() -> int:
    """The capacity of the compiled-``MaskProgram`` cache (0 = disabled)."""
    return _program_cache_capacity


def set_program_cache_capacity(capacity: Optional[int]) -> int:
    """Bound the compiled-program cache at ``capacity`` entries.

    ``0`` (the default) disables memoization entirely; ``None`` is treated
    as 0.  A negative capacity raises :exc:`ValueError`.  Shrinking the
    capacity evicts least-recently-used entries immediately.  Returns the
    previous capacity.
    """
    global _program_cache_capacity
    if capacity is None:
        capacity = 0
    capacity = int(capacity)
    if capacity < 0:
        raise ValueError(f"program cache capacity must be >= 0, got {capacity}")
    with _program_cache_lock:
        previous = _program_cache_capacity
        _program_cache_capacity = capacity
        while len(_program_cache) > capacity:
            _program_cache.popitem(last=False)
    return previous


def clear_program_cache() -> None:
    """Drop every memoized program (capacity unchanged); resets hit counters."""
    global _program_cache_hits, _program_cache_misses
    with _program_cache_lock:
        _program_cache.clear()
        _program_cache_hits = 0
        _program_cache_misses = 0


def program_cache_info() -> dict:
    """Size / capacity / hit counters of the compiled-program cache."""
    with _program_cache_lock:
        return {
            "size": len(_program_cache),
            "capacity": _program_cache_capacity,
            "hits": _program_cache_hits,
            "misses": _program_cache_misses,
        }


def cached_program(
    condition: "Conjunction",
    schema: RelationSchema,
    chunk_size: Optional[int] = None,
) -> "MaskProgram":
    """Compile ``condition`` against ``schema``, memoizing when enabled.

    Falls back to a fresh compile when the cache is disabled or the
    condition's constants are unhashable — behaviour is identical either
    way; only the compile work is saved.
    """
    global _program_cache_hits, _program_cache_misses
    if _program_cache_capacity <= 0:
        return condition.program(schema, chunk_size)
    key = (condition, schema.attribute_names, chunk_size)
    try:
        with _program_cache_lock:
            program = _program_cache.get(key)
            if program is not None:
                _program_cache.move_to_end(key)
                _program_cache_hits += 1
                return program
    except TypeError:  # unhashable constant somewhere in the condition
        return condition.program(schema, chunk_size)
    program = condition.program(schema, chunk_size)
    with _program_cache_lock:
        _program_cache_misses += 1
        if _program_cache_capacity > 0:
            _program_cache[key] = program
            while len(_program_cache) > _program_cache_capacity:
                _program_cache.popitem(last=False)
    return program


# A chunk masker, bound to one (sub-)store: maps a row window [lo, hi) to a
# 0/1 byte mask of length hi-lo.
ChunkMasker = Callable[[int, int], "bytearray"]


def chunk_window(column: Sequence[object], lo: int, hi: int) -> Sequence[object]:
    """``column[lo:hi]`` without copying when the window covers the whole buffer.

    Chunk maskers read column windows; a single-chunk pass (small store, or
    a single-predicate program) would otherwise duplicate every referenced
    buffer just to evaluate it.
    """
    if lo == 0 and hi >= len(column):
        return column
    return column[lo:hi]
# A binder compiles a predicate against one (sub-)store, typically capturing
# the column buffer(s) it reads.
ChunkBinder = Callable[[Store], ChunkMasker]


@dataclass(frozen=True)
class ConstChunkBinder:
    """Picklable binder for ``column[position] op constant`` chunk masks.

    Binders used to be closures; the process-parallel shard executor
    (:mod:`repro.relational.parallel`) ships compiled :class:`MaskProgram`
    objects to worker processes, so every binder a program holds must be a
    plain picklable value.  Applying the binder to one (sub-)store captures
    that store's column buffer and yields the ``(lo, hi) -> mask`` chunk
    masker, exactly as the closure form did.
    """

    op: "CompareOp"
    position: int
    constant: object

    def __call__(self, store: Store) -> ChunkMasker:
        column = store.column(self.position)
        op, constant = self.op, self.constant
        return lambda lo, hi: op.column_mask(chunk_window(column, lo, hi), constant)


@dataclass(frozen=True)
class PairChunkBinder:
    """Picklable binder for ``column[left] op column[right]`` chunk masks."""

    op: "CompareOp"
    left_position: int
    right_position: int

    def __call__(self, store: Store) -> ChunkMasker:
        left_column = store.column(self.left_position)
        right_column = store.column(self.right_position)
        op = self.op
        return lambda lo, hi: op.column_mask_pair(
            chunk_window(left_column, lo, hi), chunk_window(right_column, lo, hi)
        )


class MaskProgram:
    """A conjunction compiled to one fused, chunked, selectivity-ordered pass.

    ``binders`` compile the individual predicates per (sub-)store; the
    program evaluates all of them chunk by chunk, AND-fusing their chunk
    masks.  Two adaptive behaviours (neither affects results):

    * **Selectivity ordering** — before each chunk, predicates are ordered
      by the pass rate observed on the chunks already evaluated (most
      selective first), so the cheapest all-zero outcome arrives earliest.
    * **Short-circuiting** — once a chunk's accumulated mask is all zero,
      the remaining predicates are skipped for that chunk.

    The program runs through :meth:`~repro.relational.store.Store.eval_mask`,
    so a sharded backend executes it once per shard — each shard keeps its
    own selectivity statistics, avoiding cross-thread races — and stitches
    the per-shard masks into global row order.
    """

    __slots__ = ("binders", "chunk_size")

    def __init__(
        self, binders: Sequence[ChunkBinder], chunk_size: Optional[int] = None
    ) -> None:
        self.binders = list(binders)
        self.chunk_size = chunk_size  # None: read the knob at run time

    def mask(self, store: Store) -> bytearray:
        """Evaluate the program over ``store``: one 0/1 byte per row."""
        if not self.binders:
            return all_ones(len(store))
        return store.eval_mask(self.run_part)

    def run_part(self, part: Store) -> bytearray:
        """The chunked pass over one unsharded (sub-)store."""
        size = len(part)
        chunk = self.chunk_size if self.chunk_size is not None else _mask_chunk_size
        maskers = [bind(part) for bind in self.binders]
        if len(maskers) == 1:
            return maskers[0](0, size)  # nothing to fuse or reorder
        order = list(range(len(maskers)))
        passed = [0] * len(maskers)
        seen = [0] * len(maskers)
        out = bytearray(size)
        for lo in range(0, size, chunk):
            hi = min(lo + chunk, size)
            # Cheap running estimate; +1/+2 keeps unevaluated predicates at
            # 0.5 so everything gets measured early on.
            order.sort(key=lambda k: (passed[k] + 1) / (seen[k] + 2))
            acc: Optional[bytearray] = None
            for k in order:
                part_mask = maskers[k](lo, hi)
                passed[k] += part_mask.count(1)
                seen[k] += hi - lo
                acc = part_mask if acc is None else and_masks(acc, part_mask)
                if not any(acc):
                    break  # chunk already empty; skip remaining predicates
            out[lo:hi] = acc if acc is not None else all_ones(hi - lo)
        return out


@dataclass(frozen=True)
class AttrRef:
    """Reference to an attribute, optionally qualified by a relation alias."""

    alias: Optional[str]
    attribute: str

    @property
    def qualified(self) -> str:
        """``alias.attribute`` when qualified, else just ``attribute``."""
        return f"{self.alias}.{self.attribute}" if self.alias else self.attribute

    def __str__(self) -> str:  # pragma: no cover - debug helper
        return self.qualified

    @classmethod
    def parse(cls, text: str) -> "AttrRef":
        """Parse ``"alias.attr"`` or ``"attr"`` into an :class:`AttrRef`."""
        if "." in text:
            alias, attr = text.split(".", 1)
            return cls(alias, attr)
        return cls(None, text)


@dataclass(frozen=True)
class Const:
    """A literal constant appearing in a query."""

    value: object

    def __str__(self) -> str:  # pragma: no cover - debug helper
        return repr(self.value)


Operand = Union[AttrRef, Const]


def resolve_position(schema: RelationSchema, ref: AttrRef) -> int:
    """Column position of ``ref`` within ``schema``.

    The canonical attribute-resolution rules (exact qualified match, else
    unambiguous suffix match, with alias filtering), shared by the
    vectorized predicate path and :func:`repro.algebra.ast.resolve_attribute`
    (which delegates here; this module cannot import the AST module).
    """
    qualified = ref.qualified
    if qualified in schema:
        return schema.position(qualified)
    candidates = [
        name
        for name in schema.attribute_names
        if name == ref.attribute or name.endswith(f".{ref.attribute}")
    ]
    if ref.alias:
        candidates = [
            name
            for name in candidates
            if name.startswith(f"{ref.alias}.") or name == qualified
        ]
    if len(candidates) == 1:
        return schema.position(candidates[0])
    if not candidates:
        raise QueryError(
            f"attribute {qualified!r} not found in schema {list(schema.attribute_names)}"
        )
    raise QueryError(f"attribute {qualified!r} is ambiguous: matches {candidates}")


class CompareOp(enum.Enum):
    """Comparison operators supported in selection conditions."""

    EQ = "="
    NE = "!="
    LE = "<="
    LT = "<"
    GE = ">="
    GT = ">"

    def evaluate(self, left: object, right: object) -> bool:
        """Apply the operator to two concrete values."""
        if self is CompareOp.EQ:
            return left == right
        if self is CompareOp.NE:
            return left != right
        if left is None or right is None:
            return False
        try:
            if self is CompareOp.LE:
                return left <= right  # type: ignore[operator]
            if self is CompareOp.LT:
                return left < right  # type: ignore[operator]
            if self is CompareOp.GE:
                return left >= right  # type: ignore[operator]
            if self is CompareOp.GT:
                return left > right  # type: ignore[operator]
        except TypeError:
            return False
        raise QueryError(f"unsupported comparison operator {self}")

    def column_mask(self, values: Sequence[object], constant: object) -> bytearray:
        """Vectorized ``value op constant`` over a whole column.

        Returns a 0/1 byte per value with semantics identical to calling
        :meth:`evaluate` per value (``None`` and non-comparable pairs fail
        order comparisons).  The common all-comparable case runs as one
        tight generator pass — typed numeric buffers (``array.array``) skip
        the per-value ``None`` guard entirely; a ``TypeError`` from a
        mixed-type column falls back to the per-value path, which absorbs it
        pair by pair.
        """
        if self is CompareOp.EQ:
            return bytearray(v == constant for v in values)
        if self is CompareOp.NE:
            return bytearray(v != constant for v in values)
        if constant is None:
            return bytearray(len(values))
        if isinstance(values, array):
            # Typed buffer: every value is a real number, no None/TypeError
            # possible (NaN order comparisons are False, as under evaluate).
            if isinstance(constant, (int, float)):
                if self is CompareOp.LE:
                    return bytearray(v <= constant for v in values)
                if self is CompareOp.LT:
                    return bytearray(v < constant for v in values)
                if self is CompareOp.GE:
                    return bytearray(v >= constant for v in values)
                if self is CompareOp.GT:
                    return bytearray(v > constant for v in values)
            return bytearray(self.evaluate(v, constant) for v in values)
        try:
            if self is CompareOp.LE:
                return bytearray(v is not None and v <= constant for v in values)
            if self is CompareOp.LT:
                return bytearray(v is not None and v < constant for v in values)
            if self is CompareOp.GE:
                return bytearray(v is not None and v >= constant for v in values)
            if self is CompareOp.GT:
                return bytearray(v is not None and v > constant for v in values)
        except TypeError:
            return bytearray(self.evaluate(v, constant) for v in values)
        raise QueryError(f"unsupported comparison operator {self}")

    def column_mask_pair(
        self, left_values: Sequence[object], right_values: Sequence[object]
    ) -> bytearray:
        """Vectorized ``left op right`` over two aligned columns."""
        pairs = zip(left_values, right_values)
        if self is CompareOp.EQ:
            return bytearray(a == b for a, b in pairs)
        if self is CompareOp.NE:
            return bytearray(a != b for a, b in pairs)
        try:
            if self is CompareOp.LE:
                return bytearray(
                    a is not None and b is not None and a <= b for a, b in pairs
                )
            if self is CompareOp.LT:
                return bytearray(
                    a is not None and b is not None and a < b for a, b in pairs
                )
            if self is CompareOp.GE:
                return bytearray(
                    a is not None and b is not None and a >= b for a, b in pairs
                )
            if self is CompareOp.GT:
                return bytearray(
                    a is not None and b is not None and a > b for a, b in pairs
                )
        except TypeError:
            return bytearray(
                self.evaluate(a, b) for a, b in zip(left_values, right_values)
            )
        raise QueryError(f"unsupported comparison operator {self}")

    @property
    def is_equality(self) -> bool:
        return self is CompareOp.EQ

    @property
    def is_inequality_range(self) -> bool:
        """True for the order comparisons (<=, <, >=, >)."""
        return self in (CompareOp.LE, CompareOp.LT, CompareOp.GE, CompareOp.GT)

    @classmethod
    def parse(cls, symbol: str) -> "CompareOp":
        for op in cls:
            if op.value == symbol:
                return op
        if symbol == "<>":
            return cls.NE
        if symbol == "==":
            return cls.EQ
        raise QueryError(f"unknown comparison operator {symbol!r}")


@dataclass(frozen=True)
class Comparison:
    """One atomic comparison ``left op right``."""

    left: Operand
    op: CompareOp
    right: Operand

    def __post_init__(self) -> None:
        if isinstance(self.left, Const) and isinstance(self.right, Const):
            raise QueryError("comparison between two constants is not a selection")

    # -- structural helpers --------------------------------------------------
    @property
    def is_attr_const(self) -> bool:
        """True for ``A op c`` (in either written order)."""
        return isinstance(self.left, AttrRef) ^ isinstance(self.right, AttrRef)

    @property
    def is_attr_attr(self) -> bool:
        """True for ``A op B``."""
        return isinstance(self.left, AttrRef) and isinstance(self.right, AttrRef)

    def normalized(self) -> "Comparison":
        """Rewrite so an attribute is always on the left for attr/const forms."""
        if isinstance(self.left, Const) and isinstance(self.right, AttrRef):
            flipped = {
                CompareOp.LE: CompareOp.GE,
                CompareOp.LT: CompareOp.GT,
                CompareOp.GE: CompareOp.LE,
                CompareOp.GT: CompareOp.LT,
                CompareOp.EQ: CompareOp.EQ,
                CompareOp.NE: CompareOp.NE,
            }[self.op]
            return Comparison(self.right, flipped, self.left)
        return self

    def attributes(self) -> List[AttrRef]:
        """All attribute references used by this comparison."""
        refs = []
        for operand in (self.left, self.right):
            if isinstance(operand, AttrRef):
                refs.append(operand)
        return refs

    def constant(self) -> Optional[object]:
        """The constant operand for attr/const comparisons, else ``None``."""
        for operand in (self.left, self.right):
            if isinstance(operand, Const):
                return operand.value
        return None

    def mask(self, store: Store, schema: RelationSchema) -> bytearray:
        """Vectorized evaluation over a storage backend: one 0/1 byte per row.

        Pulls the referenced column buffer(s) straight from ``store`` (no
        row tuples) and applies :meth:`CompareOp.column_mask` /
        :meth:`CompareOp.column_mask_pair`.  Evaluation routes through
        :meth:`repro.relational.store.Store.eval_mask`, so a sharded backend
        evaluates each shard's buffers independently (in parallel when the
        shard pool allows) and stitches the per-shard masks back into global
        row order.  Semantics match per-row :meth:`CompareOp.evaluate`
        exactly on every backend.
        """
        # A one-binder program: run_part short-circuits to a single
        # whole-(sub-)store masker call, so this is exactly the former
        # closure-per-shard evaluation — but the masker shipped through
        # ``eval_mask`` is picklable, which lets a process-mode sharded
        # store evaluate it in worker processes.
        return MaskProgram([self.chunk_binder(schema)]).mask(store)

    def chunk_binder(self, schema: RelationSchema) -> ChunkBinder:
        """Compile this comparison for fused chunked evaluation.

        The returned binder, applied to one (sub-)store, captures the
        referenced column buffer(s) and yields a ``(lo, hi) -> mask``
        chunk masker.  Buffer slices keep their type (an ``array`` slice is
        an ``array``), so the typed fast paths of
        :meth:`CompareOp.column_mask` apply chunk by chunk.  Binders are
        plain picklable values (:class:`ConstChunkBinder` /
        :class:`PairChunkBinder`), so a compiled program can be shipped to
        the process-parallel shard executor's workers.
        """
        comparison = self.normalized()
        op = comparison.op
        if comparison.is_attr_const:
            position = resolve_position(schema, comparison.attributes()[0])
            return ConstChunkBinder(op, position, comparison.constant())
        left, right = comparison.attributes()
        return PairChunkBinder(
            op, resolve_position(schema, left), resolve_position(schema, right)
        )

    def __str__(self) -> str:  # pragma: no cover - debug helper
        return f"{self.left} {self.op.value} {self.right}"


@dataclass(frozen=True)
class Conjunction:
    """A conjunction of atomic comparisons (the paper's selection condition)."""

    comparisons: Tuple[Comparison, ...]

    @classmethod
    def of(cls, comparisons: Sequence[Comparison]) -> "Conjunction":
        return cls(tuple(comparisons))

    @classmethod
    def true(cls) -> "Conjunction":
        """The empty (always-true) condition."""
        return cls(())

    def __iter__(self):
        return iter(self.comparisons)

    def __len__(self) -> int:
        return len(self.comparisons)

    def __bool__(self) -> bool:
        return bool(self.comparisons)

    def and_also(self, other: "Conjunction") -> "Conjunction":
        """The conjunction of two conditions."""
        return Conjunction(self.comparisons + other.comparisons)

    def attributes(self) -> List[AttrRef]:
        """All attribute references mentioned anywhere in the condition."""
        refs: List[AttrRef] = []
        for comparison in self.comparisons:
            refs.extend(comparison.attributes())
        return refs

    def equality_comparisons(self) -> List[Comparison]:
        return [c for c in self.comparisons if c.op.is_equality]

    def mask(
        self,
        store: Store,
        schema: RelationSchema,
        chunk_size: Optional[int] = None,
    ) -> bytearray:
        """Vectorized conjunction via the fused chunked engine.

        The empty conjunction selects every row.  Everything else compiles
        to a :class:`MaskProgram` (see the module docstring): the
        comparisons are fused block-wise in chunks of ``chunk_size`` rows
        (default: the :func:`set_mask_chunk_size` knob), ordered per chunk
        by observed selectivity, short-circuiting once a chunk's mask is all
        zero.  The program runs through
        :meth:`~repro.relational.store.Store.eval_mask`, so a sharded
        backend fuses shard-locally and stitches one combined mask per shard
        (one gather for the conjunction, not one per comparison).  Results
        equal the per-row AND of :meth:`CompareOp.evaluate` at every chunk
        size on every backend.
        """
        if not self.comparisons:
            return all_ones(len(store))
        return cached_program(self, schema, chunk_size).mask(store)

    def program(
        self, schema: RelationSchema, chunk_size: Optional[int] = None
    ) -> MaskProgram:
        """Compile this conjunction to a reusable :class:`MaskProgram`."""
        return MaskProgram(
            [comparison.chunk_binder(schema) for comparison in self.comparisons],
            chunk_size,
        )

    def __str__(self) -> str:  # pragma: no cover - debug helper
        if not self.comparisons:
            return "true"
        return " and ".join(str(c) for c in self.comparisons)
