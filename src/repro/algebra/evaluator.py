"""Evaluation of RA / RA_aggr queries over relation instances.

This evaluator serves two callers:

* **Exact evaluation** — computing ground-truth answers ``Q(D)`` for the RC /
  MAC / F-measure computations and for the exact baseline.  Scans read base
  relations (optionally charging an access meter).
* **Plan evaluation** — the BEAS executor evaluates the *evaluation plan*
  ``ξ_E`` over the data fetched by the fetching plan ``ξ_F``.  It supplies a
  custom :class:`RelationProvider` mapping each scan alias to its fetched
  (approximate) tuples, a per-attribute *relaxation* map describing how much
  selection conditions must be loosened to compensate for access-template
  resolutions (Section 5, "evaluation plan"), and per-tuple weights so that
  ``sum``/``count``/``avg`` can account for collapsed duplicates (Section 7).

Joins are evaluated hash-join-style from the SPC canonical form so that exact
answers over multi-million-row products stay tractable.

**Columnar end to end.**  Every operator is columnar on column-backed
inputs: selections run as fused chunked mask programs
(:class:`~repro.algebra.predicates.MaskProgram`), joins and products collect
matched *index pairs* and materialize outputs by per-column gather
(:func:`repro.relational.store.gather_pairs`), union/difference keep
survivor *indices* and gather them (:func:`~repro.relational.store.vstack_gather`
/ :meth:`~repro.relational.store.Store.take`), and group-by emits its output
column-by-column — no intermediate Python row tuples are built anywhere in
the pipeline unless the output backend itself is row-major
(:func:`~repro.relational.store.preferred_output_class`).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import compress
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..errors import EvaluationError
from ..relational.database import AccessMeter, Database
from ..relational.distance import INFINITY
from ..relational.kernels import RadiusMatcher
from ..relational.relation import Relation, Row
from ..relational.schema import DatabaseSchema, RelationSchema
from ..relational.store import RowStore, Store, gather_pairs, preferred_output_class, vstack_gather
from .ast import (
    Difference,
    GroupBy,
    Product,
    Project,
    QueryNode,
    Rename,
    Scan,
    Select,
    Union,
    condition_on,
    resolve_attribute,
)
from .predicates import (
    AttrRef,
    ChunkBinder,
    ChunkMasker,
    CompareOp,
    Comparison,
    Conjunction,
    MaskProgram,
    cached_program,
    chunk_window,
)
from .spc import SPCQuery, to_spc


class Frame:
    """An intermediate result: tuples under a schema, with per-row weights.

    Backed by a :class:`~repro.relational.store.Store` so that column-backed
    (or shard-partitioned) inputs stay that way through scans, filters and
    projections.  The classic ``Frame(schema, rows, weights)`` constructor
    adopts a row list (the shape operator outputs are produced in); pass
    ``store=`` to adopt an existing backend without materializing tuples
    (the executor's fetch stage builds fetched frames on the base relation's
    store class this way, so frames inherit the database's layout).
    """

    __slots__ = ("schema", "weights", "_store")

    def __init__(
        self,
        schema: RelationSchema,
        rows: Optional[List[Row]] = None,
        weights: Optional[List[float]] = None,
        store: Optional[Store] = None,
    ) -> None:
        self.schema = schema
        if store is None:
            store = RowStore.from_rows(len(schema), rows if rows is not None else [])
        self._store = store
        if weights is None:
            weights = [1.0] * len(store)
        self.weights = weights

    @property
    def store(self) -> Store:
        """The storage backend holding this frame's tuples (read-only)."""
        return self._store

    @property
    def rows(self) -> List[Row]:
        """The tuples as a list (materialized lazily for column backends)."""
        return self._store.row_list()

    def column(self, position: int) -> Sequence[object]:
        """One attribute's values in row order, straight from the backend."""
        return self._store.column(position)

    def key_tuples(self, positions: Sequence[int]) -> Iterator[Tuple[object, ...]]:
        """Per-row sub-tuples on ``positions``, extracted column-wise."""
        return self._store.key_tuples(positions)

    @classmethod
    def from_relation(cls, relation: Relation, weights: Optional[Sequence[float]] = None) -> "Frame":
        if weights is None:
            weights = [1.0] * len(relation)
        else:
            weights = list(weights)
            if len(weights) != len(relation):
                raise EvaluationError("weights length does not match relation size")
        # The relation's store is adopted without copying; frames are
        # transient read-only views, so this is safe as long as the relation
        # is not mutated mid-evaluation (it never is).
        return cls(relation.schema, weights=weights, store=relation.store)

    def to_relation(self, distinct: bool = False) -> Relation:
        relation = Relation(self.schema, store=self._store.copy())
        return relation.distinct() if distinct else relation

    def __len__(self) -> int:
        return len(self._store)


class RelationProvider:
    """Maps a :class:`Scan` node to the tuples it should read."""

    def frame_for(self, scan: Scan, output_schema: RelationSchema) -> Frame:
        raise NotImplementedError


class DatabaseProvider(RelationProvider):
    """Reads scans from a :class:`Database`, charging the access meter."""

    def __init__(self, database: Database, meter: Optional[AccessMeter] = None) -> None:
        self.database = database
        self.meter = meter

    def frame_for(self, scan: Scan, output_schema: RelationSchema) -> Frame:
        relation = self.database.scan(scan.relation, self.meter)
        # Adopt the relation's store directly (row- or column-backed): scans
        # stay zero-copy and downstream operators read column buffers.
        return Frame(output_schema, weights=[1.0] * len(relation), store=relation.store)


class MappingProvider(RelationProvider):
    """Reads scans from pre-computed (e.g. fetched) per-alias frames."""

    def __init__(self, frames: Mapping[str, Frame]) -> None:
        self.frames = dict(frames)

    def frame_for(self, scan: Scan, output_schema: RelationSchema) -> Frame:
        alias = scan.effective_alias
        if alias not in self.frames:
            raise EvaluationError(f"no fetched data available for relation atom {alias!r}")
        frame = self.frames[alias]
        # Re-order/select columns to match the expected output schema.
        positions = []
        for name in output_schema.attribute_names:
            if name in frame.schema:
                positions.append(frame.schema.position(name))
            else:
                raise EvaluationError(
                    f"fetched data for atom {alias!r} is missing attribute {name!r}"
                )
        if positions == list(range(len(frame.schema))):
            return Frame(output_schema, weights=list(frame.weights), store=frame.store)
        return Frame(
            output_schema,
            weights=list(frame.weights),
            store=frame.store.project(positions),
        )


class Evaluator:
    """Evaluates query ASTs against a relation provider.

    Args:
        db_schema: the database schema queries are posed against.
        provider: where scans read their tuples from.
        relaxation: per-qualified-attribute slack used to relax selection
            conditions (empty for exact evaluation).
        needed_attributes: optional restriction — when a
            :class:`MappingProvider` only has a subset of each atom's
            attributes (the ones the chase covered), scans are narrowed to
            these attributes.
    """

    def __init__(
        self,
        db_schema: DatabaseSchema,
        provider: RelationProvider,
        relaxation: Optional[Mapping[str, float]] = None,
        needed_attributes: Optional[Mapping[str, Sequence[str]]] = None,
    ) -> None:
        self.db_schema = db_schema
        self.provider = provider
        self.relaxation = dict(relaxation or {})
        self.needed_attributes = {k: list(v) for k, v in (needed_attributes or {}).items()}

    # -- public entry point -------------------------------------------------
    def evaluate(self, node: QueryNode) -> Relation:
        """Evaluate ``node`` and return its result relation.

        Non-aggregate results are deduplicated (set semantics); aggregate
        results are already one row per group.
        """
        frame = self._eval(node)
        distinct = not isinstance(node, GroupBy)
        return frame.to_relation(distinct=distinct)

    def evaluate_frame(self, node: QueryNode) -> Frame:
        """Evaluate and return the raw frame (bag semantics, with weights)."""
        return self._eval(node)

    # -- node dispatch --------------------------------------------------------
    def _eval(self, node: QueryNode) -> Frame:
        if node.is_spc():
            return self._eval_spc(to_spc(node))
        if isinstance(node, Union):
            return self._eval_union(node)
        if isinstance(node, Difference):
            return self._eval_difference(node)
        if isinstance(node, GroupBy):
            return self._eval_groupby(node)
        if isinstance(node, Project):
            return self._eval_project(node)
        if isinstance(node, Select):
            child = self._eval(node.child)
            return self._filter(child, node.condition)
        if isinstance(node, Rename):
            child = self._eval(node.child)
            schema = node.output_schema(self.db_schema)
            return Frame(schema, weights=child.weights, store=child.store)
        if isinstance(node, Product):
            left = self._eval(node.left)
            right = self._eval(node.right)
            return self._product(left, right)
        raise EvaluationError(f"unsupported query node {type(node).__name__}")

    # -- scans -----------------------------------------------------------------
    def _scan_frame(self, scan: Scan) -> Frame:
        schema = scan.output_schema(self.db_schema)
        alias = scan.effective_alias
        if alias in self.needed_attributes:
            keep = [
                name
                for name in schema.attribute_names
                if name.split(".", 1)[1] in self.needed_attributes[alias]
            ]
            if keep:
                schema = schema.project(keep, name=alias)
        return self.provider.frame_for(scan, schema)

    # -- SPC evaluation (join-aware) ----------------------------------------------
    def _eval_spc(self, query: SPCQuery) -> Frame:
        frames: Dict[str, Frame] = {}
        for alias, relation_name in query.atoms.items():
            frame = self._scan_frame(Scan(relation_name, alias))
            local = self._local_condition(query, alias, frame.schema)
            if local:
                frame = self._filter(frame, local)
            frames[alias] = frame

        joined = self._join_all(frames, query)

        # Re-apply every attr/attr predicate as a residual filter.  Equality
        # predicates that drove hash joins are re-checked (harmless), and this
        # also covers same-atom comparisons, cycles in the join graph, and
        # non-equality joins, none of which the greedy join pass enforces.
        residual = [c for c in query.condition if c.is_attr_attr]
        if residual:
            joined = self._filter(joined, Conjunction.of(residual))

        if query.output:
            joined = self._project_frame(joined, query.output)
        return joined

    def _local_condition(self, query: SPCQuery, alias: str, schema: RelationSchema) -> Conjunction:
        """Attr/const predicates of ``query`` touching only atom ``alias``."""
        local: List[Comparison] = []
        for comparison in query.condition:
            comparison = comparison.normalized()
            if not comparison.is_attr_const:
                continue
            ref = comparison.attributes()[0]
            if ref.alias == alias or (ref.alias is None and f"{alias}.{ref.attribute}" in schema):
                local.append(comparison)
        return Conjunction.of(local)

    def _join_all(self, frames: Dict[str, Frame], query: SPCQuery) -> Frame:
        """Greedy hash-join of all atoms along equality join predicates."""
        equalities = [c for c in query.join_predicates() if c.op.is_equality]
        remaining = dict(frames)
        # Start from the smallest frame for a cheap build side.
        current_alias = min(remaining, key=lambda a: len(remaining[a]))
        current = remaining.pop(current_alias)
        joined_aliases = {current_alias}

        while remaining:
            # Find an equality predicate connecting the joined part to a new atom.
            next_alias = None
            for comparison in equalities:
                left, right = comparison.attributes()
                if left.alias in joined_aliases and right.alias in remaining:
                    candidate = right.alias
                elif right.alias in joined_aliases and left.alias in remaining:
                    candidate = left.alias
                else:
                    continue
                if next_alias is None or candidate == next_alias:
                    next_alias = candidate
            if next_alias is None:
                # No connecting predicate: Cartesian product with the smallest.
                next_alias = min(remaining, key=lambda a: len(remaining[a]))
                current = self._product(current, remaining.pop(next_alias))
                joined_aliases.add(next_alias)
                continue

            other = remaining.pop(next_alias)
            keys_left: List[str] = []
            keys_right: List[str] = []
            for comparison in equalities:
                left, right = comparison.attributes()
                if left.alias in joined_aliases and right.alias == next_alias:
                    keys_left.append(resolve_attribute(current.schema, left))
                    keys_right.append(resolve_attribute(other.schema, right))
                elif right.alias in joined_aliases and left.alias == next_alias:
                    keys_left.append(resolve_attribute(current.schema, right))
                    keys_right.append(resolve_attribute(other.schema, left))
            current = self._hash_join(current, other, keys_left, keys_right)
            joined_aliases.add(next_alias)
        return current

    def _hash_join(
        self,
        left: Frame,
        right: Frame,
        keys_left: Sequence[str],
        keys_right: Sequence[str],
    ) -> Frame:
        """Equality join of two frames, relaxation-aware on the join keys.

        When any join key carries a positive relaxation slack (because the
        attribute was fetched via an access template with non-zero
        resolution), the equality is loosened to "within slack" on that key.
        The slack join runs through :class:`repro.relational.kernels.RadiusMatcher`
        (hash buckets on zero-slack keys, banded sort-merge / KD-tree
        within-radius search on the slack keys) and produces exactly the
        pairs — in the same order — a nested loop over ``left × right``
        would, with one deliberate exception: a NaN key distance no longer
        counts as a match (the old ``not (dis > slack)`` test made a NaN
        join key cross-join with every row of the other side).

        Both join variants are **index-pair joins**: the probe loop collects
        matched ``(left_index, right_index)`` pairs, and the output frame is
        materialized by per-column gather
        (:func:`repro.relational.store.gather_pairs`) — on column-backed
        inputs no intermediate ``lrow + rrow`` tuples exist at all.
        """
        slack = [
            self.relaxation.get(kl, 0.0) + self.relaxation.get(kr, 0.0)
            for kl, kr in zip(keys_left, keys_right)
        ]
        # Infinite resolutions cannot be compensated by relaxation (the bound
        # is 0 already); joining everything with everything would only produce
        # noise, so such keys keep their strict equality semantics.
        slack = [0.0 if s == INFINITY else s for s in slack]
        out_schema = RelationSchema("⋈", left.schema.attributes + right.schema.attributes)
        left_indices: List[int] = []
        right_indices: List[int] = []
        weights: List[float] = []
        left_weights, right_weights = left.weights, right.weights

        positions_left = left.schema.positions(keys_left)
        positions_right = right.schema.positions(keys_right)

        emit_left = left_indices.append
        emit_right = right_indices.append
        emit_weight = weights.append
        if all(s == 0.0 for s in slack):
            # Join keys are extracted column-at-a-time on both sides; rows
            # are only ever named by index.
            buckets: Dict[Tuple[object, ...], List[int]] = {}
            for i, key in enumerate(right.key_tuples(positions_right)):
                buckets.setdefault(key, []).append(i)
            for i, key in enumerate(left.key_tuples(positions_left)):
                hits = buckets.get(key)
                if hits:
                    weight = left_weights[i]
                    for j in hits:
                        emit_left(i)
                        emit_right(j)
                        emit_weight(weight * right_weights[j])
        else:
            # Relaxed join: within-slack matching through the distance
            # kernels, indexed straight from the build side's column buffers.
            # The probe side goes through the *batch* API: on a sharded
            # build side under the process executor, all probe keys ship to
            # the worker processes in one round per shard (the workers hold
            # the shard buffers and build the matchers there); otherwise the
            # batch is the same per-query loop as before.
            distances = [left.schema.attribute(k).distance for k in keys_left]
            matcher = RadiusMatcher.from_store(
                right.store, positions_right, distances, slack
            )
            all_hits = matcher.matches_many(list(left.key_tuples(positions_left)))
            for i, hits in enumerate(all_hits):
                if hits:
                    weight = left_weights[i]
                    for j in hits:
                        emit_left(i)
                        emit_right(j)
                        emit_weight(weight * right_weights[j])

        store = gather_pairs(left.store, left_indices, right.store, right_indices)
        return Frame(out_schema, weights=weights, store=store)

    @staticmethod
    def _paired_frame(
        schema: RelationSchema,
        left: Frame,
        left_indices: Sequence[int],
        right: Frame,
        right_indices: Sequence[int],
    ) -> Frame:
        """Materialize matched index pairs as a frame by per-column gather."""
        left_weights, right_weights = left.weights, right.weights
        weights = [
            left_weights[i] * right_weights[j]
            for i, j in zip(left_indices, right_indices)
        ]
        store = gather_pairs(left.store, left_indices, right.store, right_indices)
        return Frame(schema, weights=weights, store=store)

    # -- generic operators ----------------------------------------------------
    def _product(self, left: Frame, right: Frame) -> Frame:
        schema = RelationSchema("×", left.schema.attributes + right.schema.attributes)
        size_left, size_right = len(left), len(right)
        if size_left == 0 or size_right == 0:
            cls = preferred_output_class(left.store, right.store)
            return Frame(schema, weights=[], store=cls.from_rows(len(schema), []))
        if size_right == 1:
            # Singleton side: the product is the other side with one row
            # appended per tuple — a linear gather, not a quadratic loop.
            right_weight = right.weights[0]
            weights = [w * right_weight for w in left.weights]
            store = gather_pairs(
                left.store, range(size_left), right.store, [0] * size_left
            )
            return Frame(schema, weights=weights, store=store)
        if size_left == 1:
            left_weight = left.weights[0]
            weights = [left_weight * w for w in right.weights]
            store = gather_pairs(
                left.store, [0] * size_right, right.store, range(size_right)
            )
            return Frame(schema, weights=weights, store=store)
        left_indices = [i for i in range(size_left) for _ in range(size_right)]
        right_indices = list(range(size_right)) * size_left
        return self._paired_frame(schema, left, left_indices, right, right_indices)

    def _project_frame(self, frame: Frame, columns: Sequence[AttrRef]) -> Frame:
        names = [resolve_attribute(frame.schema, ref) for ref in columns]
        positions = frame.schema.positions(names)
        schema = RelationSchema("π", tuple(frame.schema.attributes[p] for p in positions))
        return Frame(
            schema, weights=list(frame.weights), store=frame.store.project(positions)
        )

    def _eval_project(self, node: Project) -> Frame:
        child = self._eval(node.child)
        return self._project_frame(child, node.columns)

    def _eval_union(self, node: Union) -> Frame:
        left = self._eval(node.left)
        right = self._eval(node.right)
        # Dedup keys are whole-row tuples assembled column-wise (key_tuples);
        # the surviving rows are then gathered per column — first-seen order
        # and weights match the old row-dict exactly.
        all_left = list(range(len(left.schema)))
        all_right = list(range(len(right.schema)))
        seen: set = set()
        keep_left: List[int] = []
        keep_right: List[int] = []
        for keep, frame, positions in (
            (keep_left, left, all_left),
            (keep_right, right, all_right),
        ):
            for index, key in enumerate(frame.store.key_tuples(positions)):
                if key not in seen:
                    seen.add(key)
                    keep.append(index)
        weights = [left.weights[i] for i in keep_left]
        weights += [right.weights[j] for j in keep_right]
        store = vstack_gather([(left.store, keep_left), (right.store, keep_right)])
        return Frame(left.schema, weights=weights, store=store)

    def _eval_difference(self, node: Difference) -> Frame:
        left = self._eval(node.left)
        right = self._eval(node.right)
        return self._strict_difference(left, right)

    @classmethod
    def _strict_difference(cls, left: Frame, right: Frame) -> Frame:
        """Exact set difference: keep-indices over column-wise row keys.

        Shared by exact evaluation and the BEAS guard's zero-resolution
        branch; the surviving rows are gathered out of the left backend.
        """
        removed = set(right.store.key_tuples(list(range(len(right.schema)))))
        keep = [
            index
            for index, key in enumerate(
                left.store.key_tuples(list(range(len(left.schema))))
            )
            if key not in removed
        ]
        return cls._kept_frame(left, keep)

    @staticmethod
    def _kept_frame(frame: Frame, keep: Sequence[int]) -> Frame:
        """The sub-frame at row indices ``keep`` (backend-preserving gather)."""
        if len(keep) == len(frame):
            return frame
        weights = [frame.weights[index] for index in keep]
        return Frame(frame.schema, weights=weights, store=frame.store.take(keep))

    def _eval_groupby(self, node: GroupBy) -> Frame:
        child = self._eval(node.child)
        out_schema = node.output_schema(self.db_schema)
        group_names = [resolve_attribute(child.schema, ref) for ref in node.group_columns]
        group_positions = child.schema.positions(group_names)
        agg_name = resolve_attribute(child.schema, node.agg_column)
        agg_position = child.schema.position(agg_name)

        # Group keys and the aggregated column are pulled column-at-a-time;
        # no full row tuples are materialized for grouping.
        groups: Dict[Tuple[object, ...], List[Tuple[object, float]]] = {}
        for key, value, weight in zip(
            child.key_tuples(group_positions), child.column(agg_position), child.weights
        ):
            groups.setdefault(key, []).append((value, weight))

        # One output row per group, assembled column-by-column: the key
        # columns transpose the (insertion-ordered) group keys, the last
        # column is the aggregate.
        key_width = len(group_positions)
        columns: List[List[object]] = [[] for _ in range(key_width + 1)]
        for key, pairs in groups.items():
            for position in range(key_width):
                columns[position].append(key[position])
            columns[key_width].append(node.aggregate.apply_weighted(pairs))
        cls = preferred_output_class(child.store)
        store = cls.from_columns(len(out_schema), columns)
        return Frame(out_schema, weights=[1.0] * len(groups), store=store)

    # -- selection with relaxation --------------------------------------------
    def _filter(self, frame: Frame, condition: Conjunction) -> Frame:
        """Apply a (possibly relaxed) conjunction through the fused engine.

        Each comparison compiles to a per-store chunk binder (see
        :meth:`_comparison_binder`); the whole conjunction then runs as one
        :class:`~repro.algebra.predicates.MaskProgram` — chunked, fused,
        selectivity-ordered — through
        :meth:`~repro.relational.store.Store.select_gather`, which on a
        sharded backend runs the program shard-locally (over the shard's
        typed buffers, in parallel when the shard pool allows) and — under
        the process executor with affinity routing on — fuses the mask and
        the survivor gather into a single worker round-trip per shard.  The
        surviving rows are compressed out of the backend in one pass, so no
        per-row tuple is materialized for filtering.  Semantics are
        identical to the former row-at-a-time ``all(check(row) ...)`` loop
        on every backend at every chunk size.
        """
        if not condition:
            return frame
        condition = condition_on(frame.schema, condition)
        if not any(0 < slack < INFINITY for slack in self.relaxation.values()):
            # Every comparison compiles strictly (zero or infinite slack falls
            # back to the strict binder), which is exactly what
            # ``Conjunction.program`` builds — route through the shared
            # compiled-program cache so a serving workload re-running the
            # same query shape skips recompilation.
            program = cached_program(condition, frame.schema)
        else:
            program = MaskProgram(
                [self._comparison_binder(frame.schema, comparison) for comparison in condition]
            )
        mask, selected = frame.store.select_gather(program.run_part)
        if selected is frame.store:
            return frame
        weights = list(compress(frame.weights, mask))
        return Frame(frame.schema, weights=weights, store=selected)

    def _comparison_binder(
        self, schema: RelationSchema, comparison: Comparison
    ) -> ChunkBinder:
        """Compile one comparison to a fused-engine chunk binder.

        Strict comparisons (no usable slack) delegate to
        :meth:`~repro.algebra.predicates.Comparison.chunk_binder` — the
        single vectorized-dispatch implementation; only the relaxed
        per-value loops live here (sliced to the engine's chunk windows).
        An infinite resolution gives no usable relaxation: the accuracy
        bound is already 0, and relaxing by +inf would admit every tuple, so
        it falls back to the strict condition as well.  The returned binder
        is applied per (sub-)store by the program, so it must not capture
        whole-frame state.
        """
        comparison = comparison.normalized()
        if comparison.is_attr_const:
            ref = comparison.attributes()[0]
            name = resolve_attribute(schema, ref)
            slack = self.relaxation.get(name, 0.0)
            if slack <= 0 or slack == INFINITY:
                return comparison.chunk_binder(schema)
            return _RelaxedConstBinder(
                comparison.op,
                schema.position(name),
                comparison.constant(),
                slack,
                schema.attribute(name).distance,
            )
        if comparison.is_attr_attr:
            left, right = comparison.attributes()
            lname = resolve_attribute(schema, left)
            rname = resolve_attribute(schema, right)
            slack = self.relaxation.get(lname, 0.0) + self.relaxation.get(rname, 0.0)
            if slack <= 0 or slack == INFINITY:
                return comparison.chunk_binder(schema)
            return _RelaxedPairBinder(
                comparison.op,
                schema.position(lname),
                schema.position(rname),
                slack,
                schema.attribute(lname).distance,
            )
        raise EvaluationError(f"cannot compile comparison {comparison}")


@dataclass(frozen=True)
class _RelaxedConstBinder:
    """Picklable fused-engine binder for a relaxed ``A op c`` comparison.

    The former closure form could not cross a process boundary; as a frozen
    dataclass the binder rides inside compiled
    :class:`~repro.algebra.predicates.MaskProgram`\\s to the process-parallel
    shard executor's workers (op enums, constants and the built-in distance
    functions all pickle).
    """

    op: CompareOp
    position: int
    constant: object
    slack: float
    distance: object

    def __call__(self, store: Store) -> ChunkMasker:
        column = store.column(self.position)
        op, constant, slack, distance = self.op, self.constant, self.slack, self.distance
        return lambda lo, hi: bytearray(
            _relaxed_attr_const(value, op, constant, slack, distance)
            for value in chunk_window(column, lo, hi)
        )


@dataclass(frozen=True)
class _RelaxedPairBinder:
    """Picklable fused-engine binder for a relaxed ``A op B`` comparison."""

    op: CompareOp
    left_position: int
    right_position: int
    slack: float
    distance: object

    def __call__(self, store: Store) -> ChunkMasker:
        left_column = store.column(self.left_position)
        right_column = store.column(self.right_position)
        op, slack, distance = self.op, self.slack, self.distance
        return lambda lo, hi: bytearray(
            _relaxed_attr_attr(lvalue, rvalue, op, slack, distance)
            for lvalue, rvalue in zip(
                chunk_window(left_column, lo, hi),
                chunk_window(right_column, lo, hi),
            )
        )


def _relaxed_attr_const(value, op: CompareOp, constant, slack: float, distance) -> bool:
    """Relaxed evaluation of ``A op c`` with slack (Section 5, ξ_E).

    Equalities become ``dis_A(A, c) <= slack``.  Order comparisons accept any
    value that satisfies the strict condition *or* lies within ``slack`` of
    the constant under the attribute's distance function — the slack and the
    resolution are both expressed in distance units, so a fetched
    representative standing (within resolution) for a satisfying base tuple
    is never rejected, which is what the accuracy bound needs.
    """
    if op is CompareOp.EQ:
        return distance(value, constant) <= slack
    if op is CompareOp.NE:
        return True if distance(value, constant) > 0 else value != constant
    if value is None or constant is None:
        return False
    strict = op.evaluate(value, constant)
    if strict:
        return True
    return distance(value, constant) <= slack


def _relaxed_attr_attr(left, right, op: CompareOp, slack: float, distance) -> bool:
    """Relaxed evaluation of ``A op B`` with combined slack of both sides."""
    if op is CompareOp.EQ:
        return distance(left, right) <= slack
    if op is CompareOp.NE:
        return True if distance(left, right) > 0 else left != right
    if left is None or right is None:
        return False
    if op.evaluate(left, right):
        return True
    return distance(left, right) <= slack


def evaluate_exact(
    node: QueryNode,
    database: Database,
    meter: Optional[AccessMeter] = None,
) -> Relation:
    """Compute the exact answers ``Q(D)`` by full evaluation."""
    evaluator = Evaluator(database.schema, DatabaseProvider(database, meter))
    return evaluator.evaluate(node)
