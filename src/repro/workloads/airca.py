"""A synthetic AIRCA-like workload (US flight on-time performance + carriers).

The paper's AIRCA dataset integrates Flight On-Time Performance and Carrier
Statistics data (7 tables, 358 attributes, 162 M tuples, ~60 GB).  This
generator reproduces its *shape* at laptop scale: a wide fact table of
flights keyed by carrier / origin / destination / year with delay and
distance measures, plus small dimension tables for carriers and airports and
a monthly carrier-statistics table.  Delays are skewed (most flights on time,
a long tail of large delays) as in the real data, which is what makes
approximating them with levelled templates interesting.
"""

from __future__ import annotations

import random

from ..access.builder import ConstraintSpec, FamilySpec
from ..relational.database import Database
from ..relational.distance import CATEGORICAL, numeric_scaled
from ..relational.relation import Relation
from ..relational.schema import Attribute, DatabaseSchema, RelationSchema
from .base import AttributeInfo, JoinEdge, Workload

CARRIERS = ("AA", "DL", "UA", "WN", "B6", "AS", "NK", "F9", "HA", "G4")
STATES = ("CA", "TX", "NY", "FL", "IL", "GA", "WA", "CO", "AZ", "MA", "NV", "OR")
YEARS = tuple(range(1995, 2015))


def _schema() -> DatabaseSchema:
    return DatabaseSchema(
        [
            RelationSchema(
                "carriers",
                [Attribute("carrier"), Attribute("carrier_name"), Attribute("hub_state", CATEGORICAL)],
            ),
            RelationSchema(
                "airports",
                [
                    Attribute("airport"),
                    Attribute("state", CATEGORICAL),
                    Attribute("lat", numeric_scaled(50.0)),
                    Attribute("lon", numeric_scaled(120.0)),
                ],
            ),
            RelationSchema(
                "flights",
                [
                    Attribute("flight_id"),
                    Attribute("carrier"),
                    Attribute("origin"),
                    Attribute("dest"),
                    Attribute("year", numeric_scaled(float(len(YEARS)))),
                    Attribute("month", numeric_scaled(12.0)),
                    Attribute("dep_delay", numeric_scaled(360.0)),
                    Attribute("arr_delay", numeric_scaled(360.0)),
                    Attribute("distance", numeric_scaled(3000.0)),
                ],
            ),
            RelationSchema(
                "carrier_stats",
                [
                    Attribute("carrier"),
                    Attribute("year", numeric_scaled(float(len(YEARS)))),
                    Attribute("passengers", numeric_scaled(1e6)),
                    Attribute("freight", numeric_scaled(1e5)),
                ],
            ),
        ]
    )


def _skewed_delay(rng: random.Random) -> float:
    """Mostly-on-time delays with a heavy tail, as in the BTS data."""
    if rng.random() < 0.7:
        return round(rng.uniform(-10.0, 15.0), 1)
    return round(rng.expovariate(1 / 45.0), 1)


def generate(flights: int = 6000, airports: int = 60, seed: int = 29) -> Workload:
    """Generate the AIRCA-like workload with ``flights`` fact rows."""
    rng = random.Random(seed)
    schema = _schema()

    airport_codes = [f"AP{i:03d}" for i in range(airports)]
    carrier_rows = [
        (code, f"{code} Airlines", rng.choice(STATES)) for code in CARRIERS
    ]
    airport_rows = [
        (
            code,
            rng.choice(STATES),
            round(rng.uniform(25.0, 49.0), 3),
            round(rng.uniform(-124.0, -70.0), 3),
        )
        for code in airport_codes
    ]
    flight_rows = []
    for flight_id in range(flights):
        origin, dest = rng.sample(airport_codes, 2)
        flight_rows.append(
            (
                flight_id,
                rng.choice(CARRIERS),
                origin,
                dest,
                rng.choice(YEARS),
                rng.randint(1, 12),
                _skewed_delay(rng),
                _skewed_delay(rng),
                round(rng.uniform(100.0, 2800.0), 0),
            )
        )
    stats_rows = [
        (carrier, year, rng.randint(10_000, 900_000), rng.randint(100, 90_000))
        for carrier in CARRIERS
        for year in YEARS
    ]

    database = Database(
        schema,
        {
            "carriers": Relation(schema.relation("carriers"), carrier_rows),
            "airports": Relation(schema.relation("airports"), airport_rows),
            "flights": Relation(schema.relation("flights"), flight_rows),
            "carrier_stats": Relation(schema.relation("carrier_stats"), stats_rows),
        },
    )

    constraints = [
        ConstraintSpec("carriers", ("carrier",), ("carrier_name", "hub_state"), n=1),
        ConstraintSpec("airports", ("airport",), ("state", "lat", "lon"), n=1),
        ConstraintSpec(
            "flights",
            ("flight_id",),
            ("carrier", "origin", "dest", "year", "month", "dep_delay", "arr_delay", "distance"),
            n=1,
        ),
        ConstraintSpec("carrier_stats", ("carrier", "year"), ("passengers", "freight"), n=1),
        ConstraintSpec("carrier_stats", ("carrier",), ("year", "passengers", "freight")),
    ]
    families = [
        FamilySpec("flights", ("carrier",), ("dep_delay", "arr_delay", "distance", "year", "month")),
        FamilySpec("flights", ("origin",), ("dep_delay", "arr_delay", "distance", "carrier", "year")),
        FamilySpec("flights", ("carrier", "year"), ("dep_delay", "arr_delay", "distance", "month")),
        FamilySpec("airports", ("state",), ("lat", "lon")),
    ]
    join_edges = [
        JoinEdge("flights", "carrier", "carriers", "carrier"),
        JoinEdge("flights", "origin", "airports", "airport"),
        JoinEdge("flights", "dest", "airports", "airport"),
        JoinEdge("flights", "carrier", "carrier_stats", "carrier"),
        JoinEdge("carrier_stats", "carrier", "carriers", "carrier"),
    ]
    attributes = [
        AttributeInfo("flights", "carrier", "categorical", CARRIERS),
        AttributeInfo("flights", "origin", "categorical", tuple(airport_codes[:12])),
        AttributeInfo("flights", "dest", "categorical", tuple(airport_codes[:12])),
        AttributeInfo("flights", "year", "numeric", low=min(YEARS), high=max(YEARS)),
        AttributeInfo("flights", "month", "numeric", low=1, high=12),
        AttributeInfo("flights", "dep_delay", "numeric", low=-10.0, high=360.0),
        AttributeInfo("flights", "arr_delay", "numeric", low=-10.0, high=360.0),
        AttributeInfo("flights", "distance", "numeric", low=100.0, high=2800.0),
        AttributeInfo("carriers", "hub_state", "categorical", STATES),
        AttributeInfo("airports", "state", "categorical", STATES),
        AttributeInfo("airports", "lat", "numeric", low=25.0, high=49.0),
        AttributeInfo("carrier_stats", "passengers", "numeric", low=10_000, high=900_000),
        AttributeInfo("carrier_stats", "year", "numeric", low=min(YEARS), high=max(YEARS)),
    ]

    return Workload(
        name="airca",
        database=database,
        constraints=constraints,
        families=families,
        join_edges=join_edges,
        attributes=attributes,
    )
