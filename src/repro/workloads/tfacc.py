"""A synthetic TFACC-like workload (UK road accidents + public transport nodes).

The paper's TFACC dataset combines the UK road-safety accident data
(1979–2005) with the National Public Transport Access Nodes dataset
(19 tables, 113 attributes, 89.7 M tuples, ~21 GB).  This generator keeps the
shape that matters for the experiments: an accidents fact table with
severity / road / weather categories, numeric casualty counts, speed limits
and easting/northing coordinates; a vehicles table keyed by accident (1–4
vehicles per accident); a casualties table; and a NaPTAN-like stops table
with coordinates, joinable to accidents by local-authority district.
"""

from __future__ import annotations

import random

from ..access.builder import ConstraintSpec, FamilySpec
from ..relational.database import Database
from ..relational.distance import CATEGORICAL, numeric_scaled
from ..relational.relation import Relation
from ..relational.schema import Attribute, DatabaseSchema, RelationSchema
from .base import AttributeInfo, JoinEdge, Workload

SEVERITIES = (1, 2, 3)  # fatal, serious, slight
ROAD_TYPES = ("motorway", "a_road", "b_road", "minor", "roundabout")
WEATHER = ("fine", "rain", "snow", "fog", "wind")
VEHICLE_TYPES = ("car", "motorcycle", "bus", "hgv", "bicycle", "van")
STOP_TYPES = ("bus", "rail", "tram", "ferry")
YEARS = tuple(range(1979, 2006))
DISTRICTS = tuple(range(1, 41))


def _schema() -> DatabaseSchema:
    return DatabaseSchema(
        [
            RelationSchema(
                "accidents",
                [
                    Attribute("accident_id"),
                    Attribute("severity", numeric_scaled(2.0)),
                    Attribute("year", numeric_scaled(float(len(YEARS)))),
                    Attribute("district"),
                    Attribute("road_type", CATEGORICAL),
                    Attribute("weather", CATEGORICAL),
                    Attribute("speed_limit", numeric_scaled(50.0)),
                    Attribute("casualties", numeric_scaled(8.0)),
                    Attribute("easting", numeric_scaled(600000.0)),
                    Attribute("northing", numeric_scaled(600000.0)),
                ],
            ),
            RelationSchema(
                "vehicles",
                [
                    Attribute("accident_id"),
                    Attribute("vehicle_type", CATEGORICAL),
                    Attribute("driver_age", numeric_scaled(80.0)),
                ],
            ),
            RelationSchema(
                "casualties",
                [
                    Attribute("accident_id"),
                    Attribute("casualty_class", CATEGORICAL),
                    Attribute("age", numeric_scaled(90.0)),
                ],
            ),
            RelationSchema(
                "stops",
                [
                    Attribute("stop_id"),
                    Attribute("district"),
                    Attribute("stop_type", CATEGORICAL),
                    Attribute("easting", numeric_scaled(600000.0)),
                    Attribute("northing", numeric_scaled(600000.0)),
                ],
            ),
        ]
    )


def generate(accidents: int = 5000, stops: int = 1500, seed: int = 41) -> Workload:
    """Generate the TFACC-like workload with ``accidents`` fact rows."""
    rng = random.Random(seed)
    schema = _schema()

    accident_rows = []
    vehicle_rows = []
    casualty_rows = []
    for accident_id in range(accidents):
        severity = rng.choices(SEVERITIES, weights=(1, 6, 20))[0]
        year = rng.choice(YEARS)
        district = rng.choice(DISTRICTS)
        accident_rows.append(
            (
                accident_id,
                severity,
                year,
                district,
                rng.choice(ROAD_TYPES),
                rng.choices(WEATHER, weights=(12, 5, 1, 1, 1))[0],
                rng.choice((20, 30, 40, 50, 60, 70)),
                rng.choices(range(1, 9), weights=(30, 12, 5, 2, 1, 1, 1, 1))[0],
                round(rng.uniform(100000.0, 655000.0), 0),
                round(rng.uniform(10000.0, 655000.0), 0),
            )
        )
        for _ in range(rng.randint(1, 4)):
            vehicle_rows.append(
                (accident_id, rng.choice(VEHICLE_TYPES), rng.randint(17, 90))
            )
        for _ in range(rng.randint(1, 3)):
            casualty_rows.append(
                (accident_id, rng.choice(("driver", "passenger", "pedestrian")), rng.randint(1, 90))
            )
    stop_rows = [
        (
            stop_id,
            rng.choice(DISTRICTS),
            rng.choices(STOP_TYPES, weights=(20, 3, 1, 1))[0],
            round(rng.uniform(100000.0, 655000.0), 0),
            round(rng.uniform(10000.0, 655000.0), 0),
        )
        for stop_id in range(stops)
    ]

    database = Database(
        schema,
        {
            "accidents": Relation(schema.relation("accidents"), accident_rows),
            "vehicles": Relation(schema.relation("vehicles"), vehicle_rows),
            "casualties": Relation(schema.relation("casualties"), casualty_rows),
            "stops": Relation(schema.relation("stops"), stop_rows),
        },
    )

    constraints = [
        ConstraintSpec(
            "accidents",
            ("accident_id",),
            (
                "severity", "year", "district", "road_type", "weather",
                "speed_limit", "casualties", "easting", "northing",
            ),
            n=1,
        ),
        ConstraintSpec("vehicles", ("accident_id",), ("vehicle_type", "driver_age"), n=4),
        ConstraintSpec("casualties", ("accident_id",), ("casualty_class", "age"), n=3),
        ConstraintSpec("stops", ("stop_id",), ("district", "stop_type", "easting", "northing"), n=1),
    ]
    families = [
        FamilySpec(
            "accidents",
            ("road_type",),
            ("severity", "speed_limit", "casualties", "year", "district"),
        ),
        FamilySpec(
            "accidents",
            ("district",),
            ("severity", "speed_limit", "casualties", "year", "easting", "northing"),
        ),
        FamilySpec(
            "accidents",
            ("year",),
            ("severity", "speed_limit", "casualties", "district"),
        ),
        FamilySpec("vehicles", ("vehicle_type",), ("driver_age",)),
        FamilySpec("stops", ("district",), ("stop_type", "easting", "northing")),
        FamilySpec("stops", ("stop_type",), ("district", "easting", "northing")),
    ]
    join_edges = [
        JoinEdge("vehicles", "accident_id", "accidents", "accident_id"),
        JoinEdge("casualties", "accident_id", "accidents", "accident_id"),
        JoinEdge("accidents", "district", "stops", "district"),
    ]
    attributes = [
        AttributeInfo("accidents", "severity", "numeric", low=1, high=3),
        AttributeInfo("accidents", "year", "numeric", low=min(YEARS), high=max(YEARS)),
        AttributeInfo("accidents", "district", "categorical", DISTRICTS[:12]),
        AttributeInfo("accidents", "road_type", "categorical", ROAD_TYPES),
        AttributeInfo("accidents", "weather", "categorical", WEATHER),
        AttributeInfo("accidents", "speed_limit", "numeric", low=20, high=70),
        AttributeInfo("accidents", "casualties", "numeric", low=1, high=8),
        AttributeInfo("vehicles", "vehicle_type", "categorical", VEHICLE_TYPES),
        AttributeInfo("vehicles", "driver_age", "numeric", low=17, high=90),
        AttributeInfo("casualties", "age", "numeric", low=1, high=90),
        AttributeInfo("stops", "stop_type", "categorical", STOP_TYPES),
        AttributeInfo("stops", "district", "categorical", DISTRICTS[:12]),
    ]

    return Workload(
        name="tfacc",
        database=database,
        constraints=constraints,
        families=families,
        join_edges=join_edges,
        attributes=attributes,
    )
