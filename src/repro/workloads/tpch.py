"""A scaled-down TPC-H-like synthetic dataset.

The paper's synthetic experiments use TPC-H ``dbgen`` with scale factors 5–25
(up to ~200 M tuples).  This generator reproduces the schema shape, the
key / foreign-key structure and the value distributions (uniform prices and
quantities, categorical segments / brands / statuses, a small fixed
nation/region hierarchy) at a scale controlled by ``scale`` — the number of
rows is roughly ``scale × 2,800``, so sweeping ``scale`` reproduces the
|D|-axis of Figs 6(e), 6(f), 6(j) and 6(l).
"""

from __future__ import annotations

import random

from ..access.builder import ConstraintSpec, FamilySpec
from ..relational.database import Database
from ..relational.distance import CATEGORICAL, numeric_scaled
from ..relational.relation import Relation
from ..relational.schema import Attribute, DatabaseSchema, RelationSchema
from .base import AttributeInfo, JoinEdge, Workload

REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")
NATIONS = (
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
    "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
    "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA",
    "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
)
SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY")
BRANDS = tuple(f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6))
PART_TYPES = ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
ORDER_STATUS = ("F", "O", "P")
SHIP_YEARS = tuple(range(1992, 1999))


def _schema() -> DatabaseSchema:
    return DatabaseSchema(
        [
            RelationSchema("region", [Attribute("r_regionkey"), Attribute("r_name", CATEGORICAL)]),
            RelationSchema(
                "nation",
                [Attribute("n_nationkey"), Attribute("n_name", CATEGORICAL), Attribute("n_regionkey")],
            ),
            RelationSchema(
                "supplier",
                [
                    Attribute("s_suppkey"),
                    Attribute("s_nationkey"),
                    Attribute("s_acctbal", numeric_scaled(10000.0)),
                ],
            ),
            RelationSchema(
                "customer",
                [
                    Attribute("c_custkey"),
                    Attribute("c_nationkey"),
                    Attribute("c_mktsegment", CATEGORICAL),
                    Attribute("c_acctbal", numeric_scaled(10000.0)),
                ],
            ),
            RelationSchema(
                "part",
                [
                    Attribute("p_partkey"),
                    Attribute("p_brand", CATEGORICAL),
                    Attribute("p_type", CATEGORICAL),
                    Attribute("p_size", numeric_scaled(50.0)),
                    Attribute("p_retailprice", numeric_scaled(2000.0)),
                ],
            ),
            RelationSchema(
                "orders",
                [
                    Attribute("o_orderkey"),
                    Attribute("o_custkey"),
                    Attribute("o_orderstatus", CATEGORICAL),
                    Attribute("o_totalprice", numeric_scaled(50000.0)),
                    Attribute("o_orderyear", numeric_scaled(7.0)),
                ],
            ),
            RelationSchema(
                "lineitem",
                [
                    Attribute("l_orderkey"),
                    Attribute("l_partkey"),
                    Attribute("l_suppkey"),
                    Attribute("l_quantity", numeric_scaled(50.0)),
                    Attribute("l_extendedprice", numeric_scaled(50000.0)),
                    Attribute("l_discount", numeric_scaled(0.1)),
                    Attribute("l_shipyear", numeric_scaled(7.0)),
                ],
            ),
        ]
    )


def generate(scale: int = 1, seed: int = 13) -> Workload:
    """Generate the TPC-H-like workload at the given scale factor."""
    rng = random.Random(seed * 1000 + scale)
    schema = _schema()

    n_customer = 100 * scale
    n_supplier = 20 * scale
    n_part = 200 * scale
    n_orders = 500 * scale
    lineitems_per_order = 4

    region_rows = [(i, name) for i, name in enumerate(REGIONS)]
    nation_rows = [(i, name, i % len(REGIONS)) for i, name in enumerate(NATIONS)]
    supplier_rows = [
        (i, rng.randrange(len(NATIONS)), round(rng.uniform(-999.0, 9999.0), 2))
        for i in range(n_supplier)
    ]
    customer_rows = [
        (
            i,
            rng.randrange(len(NATIONS)),
            rng.choice(SEGMENTS),
            round(rng.uniform(-999.0, 9999.0), 2),
        )
        for i in range(n_customer)
    ]
    part_rows = [
        (
            i,
            rng.choice(BRANDS),
            rng.choice(PART_TYPES),
            rng.randint(1, 50),
            round(900.0 + (i % 200) + rng.uniform(0, 100), 2),
        )
        for i in range(n_part)
    ]
    orders_rows = [
        (
            i,
            rng.randrange(n_customer),
            rng.choice(ORDER_STATUS),
            round(rng.uniform(1000.0, 50000.0), 2),
            rng.choice(SHIP_YEARS),
        )
        for i in range(n_orders)
    ]
    lineitem_rows = []
    for order_key, *_ in orders_rows:
        for _ in range(rng.randint(1, lineitems_per_order * 2 - 1)):
            lineitem_rows.append(
                (
                    order_key,
                    rng.randrange(n_part),
                    rng.randrange(n_supplier),
                    rng.randint(1, 50),
                    round(rng.uniform(900.0, 50000.0), 2),
                    round(rng.choice((0.0, 0.01, 0.02, 0.05, 0.1)), 2),
                    rng.choice(SHIP_YEARS),
                )
            )

    database = Database(
        schema,
        {
            "region": Relation(schema.relation("region"), region_rows),
            "nation": Relation(schema.relation("nation"), nation_rows),
            "supplier": Relation(schema.relation("supplier"), supplier_rows),
            "customer": Relation(schema.relation("customer"), customer_rows),
            "part": Relation(schema.relation("part"), part_rows),
            "orders": Relation(schema.relation("orders"), orders_rows),
            "lineitem": Relation(schema.relation("lineitem"), lineitem_rows),
        },
    )

    max_lineitems = max(
        sum(1 for row in lineitem_rows if row[0] == key) for key in range(min(50, n_orders))
    )
    constraints = [
        ConstraintSpec("region", ("r_regionkey",), ("r_name",), n=1),
        ConstraintSpec("nation", ("n_nationkey",), ("n_name", "n_regionkey"), n=1),
        ConstraintSpec("supplier", ("s_suppkey",), ("s_nationkey", "s_acctbal"), n=1),
        ConstraintSpec(
            "customer", ("c_custkey",), ("c_nationkey", "c_mktsegment", "c_acctbal"), n=1
        ),
        ConstraintSpec(
            "part", ("p_partkey",), ("p_brand", "p_type", "p_size", "p_retailprice"), n=1
        ),
        ConstraintSpec(
            "orders", ("o_orderkey",), ("o_custkey", "o_orderstatus", "o_totalprice", "o_orderyear"), n=1
        ),
        ConstraintSpec("orders", ("o_custkey",), ("o_orderkey",)),
        ConstraintSpec(
            "lineitem",
            ("l_orderkey",),
            ("l_partkey", "l_suppkey", "l_quantity", "l_extendedprice", "l_discount", "l_shipyear"),
            n=max(max_lineitems, lineitems_per_order * 2),
        ),
    ]
    families = [
        FamilySpec("lineitem", ("l_shipyear",), ("l_quantity", "l_extendedprice", "l_discount")),
        FamilySpec("orders", ("o_orderyear",), ("o_totalprice", "o_orderstatus", "o_custkey")),
        FamilySpec("orders", ("o_orderstatus",), ("o_totalprice", "o_orderyear")),
        FamilySpec("customer", ("c_mktsegment",), ("c_acctbal", "c_nationkey")),
        FamilySpec("part", ("p_brand",), ("p_size", "p_retailprice", "p_type")),
        FamilySpec("supplier", ("s_nationkey",), ("s_acctbal",)),
    ]
    join_edges = [
        JoinEdge("nation", "n_regionkey", "region", "r_regionkey"),
        JoinEdge("supplier", "s_nationkey", "nation", "n_nationkey"),
        JoinEdge("customer", "c_nationkey", "nation", "n_nationkey"),
        JoinEdge("orders", "o_custkey", "customer", "c_custkey"),
        JoinEdge("lineitem", "l_orderkey", "orders", "o_orderkey"),
        JoinEdge("lineitem", "l_partkey", "part", "p_partkey"),
        JoinEdge("lineitem", "l_suppkey", "supplier", "s_suppkey"),
    ]

    attributes = [
        AttributeInfo("customer", "c_mktsegment", "categorical", SEGMENTS),
        AttributeInfo("customer", "c_acctbal", "numeric", low=-999.0, high=9999.0),
        AttributeInfo("part", "p_brand", "categorical", BRANDS[:12]),
        AttributeInfo("part", "p_type", "categorical", PART_TYPES),
        AttributeInfo("part", "p_size", "numeric", low=1, high=50),
        AttributeInfo("part", "p_retailprice", "numeric", low=900.0, high=1200.0),
        AttributeInfo("orders", "o_orderstatus", "categorical", ORDER_STATUS),
        AttributeInfo("orders", "o_totalprice", "numeric", low=1000.0, high=50000.0),
        AttributeInfo("orders", "o_orderyear", "numeric", low=1992, high=1998),
        AttributeInfo("lineitem", "l_quantity", "numeric", low=1, high=50),
        AttributeInfo("lineitem", "l_extendedprice", "numeric", low=900.0, high=50000.0),
        AttributeInfo("lineitem", "l_discount", "numeric", low=0.0, high=0.1),
        AttributeInfo("lineitem", "l_shipyear", "numeric", low=1992, high=1998),
        AttributeInfo("supplier", "s_acctbal", "numeric", low=-999.0, high=9999.0),
        AttributeInfo("nation", "n_name", "categorical", NATIONS[:12]),
        AttributeInfo("region", "r_name", "categorical", REGIONS),
    ]

    return Workload(
        name="tpch",
        database=database,
        constraints=constraints,
        families=families,
        join_edges=join_edges,
        attributes=attributes,
    )
