"""Common infrastructure for workload (dataset) generators.

Each workload module builds a :class:`Workload`: a synthetic database whose
schema shape, key/foreign-key structure, value distributions and skew mimic
one of the paper's datasets (TPC-H, AIRCA, TFACC) at laptop scale, together
with

* the access constraints and template families the experiments declare over
  it (Section 8, "Access schema"), and
* metadata the random query generator needs: which attribute pairs are
  joinable, which attributes are categorical vs numeric, and sample values.

Numeric attributes use distances scaled by the attribute's value range so
that tuple distances (and hence RC / MAC accuracies) are comparable across
attributes and datasets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..access.builder import ConstraintSpec, FamilySpec
from ..relational.database import Database


@dataclass(frozen=True)
class JoinEdge:
    """A joinable attribute pair between two relations (key / foreign key)."""

    left_relation: str
    left_attribute: str
    right_relation: str
    right_attribute: str


@dataclass(frozen=True)
class AttributeInfo:
    """Query-generation metadata for one attribute."""

    relation: str
    attribute: str
    kind: str  # "numeric" | "categorical" | "key"
    sample_values: Tuple[object, ...] = ()
    low: Optional[float] = None
    high: Optional[float] = None


@dataclass
class Workload:
    """A generated dataset plus its access schema and query-generation metadata."""

    name: str
    database: Database
    constraints: List[ConstraintSpec] = field(default_factory=list)
    families: List[FamilySpec] = field(default_factory=list)
    join_edges: List[JoinEdge] = field(default_factory=list)
    attributes: List[AttributeInfo] = field(default_factory=list)

    def numeric_attributes(self, relation: Optional[str] = None) -> List[AttributeInfo]:
        return [
            a
            for a in self.attributes
            if a.kind == "numeric" and (relation is None or a.relation == relation)
        ]

    def categorical_attributes(self, relation: Optional[str] = None) -> List[AttributeInfo]:
        return [
            a
            for a in self.attributes
            if a.kind == "categorical" and (relation is None or a.relation == relation)
        ]

    def attribute_info(self, relation: str, attribute: str) -> Optional[AttributeInfo]:
        for info in self.attributes:
            if info.relation == relation and info.attribute == attribute:
                return info
        return None

    def edges_for(self, relation: str) -> List[JoinEdge]:
        """Join edges incident to one relation."""
        return [
            e
            for e in self.join_edges
            if e.left_relation == relation or e.right_relation == relation
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Workload({self.name}, |D|={self.database.total_tuples}, "
            f"{len(self.constraints)} constraints, {len(self.families)} families)"
        )


def sample_values(values: Sequence[object], rng: random.Random, count: int = 12) -> Tuple[object, ...]:
    """A small deterministic sample of distinct attribute values."""
    distinct = sorted(set(values), key=repr)
    if len(distinct) <= count:
        return tuple(distinct)
    return tuple(rng.sample(distinct, count))


def numeric_bounds(values: Sequence[object]) -> Tuple[float, float]:
    """Numeric (low, high) bounds of a value sequence (0, 1 when empty)."""
    numeric = [float(v) for v in values if isinstance(v, (int, float))]
    if not numeric:
        return 0.0, 1.0
    return min(numeric), max(numeric)
