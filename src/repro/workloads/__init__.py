"""Workload generators: TPC-H-like, AIRCA-like, TFACC-like, social graph, query generator."""

from . import airca, social, tfacc, tpch
from .base import AttributeInfo, JoinEdge, Workload
from .querygen import GeneratedQuery, QueryGenerator

WORKLOADS = {
    "tpch": tpch.generate,
    "airca": airca.generate,
    "tfacc": tfacc.generate,
    "social": social.generate,
}

__all__ = [
    "AttributeInfo",
    "GeneratedQuery",
    "JoinEdge",
    "QueryGenerator",
    "WORKLOADS",
    "Workload",
    "airca",
    "social",
    "tfacc",
    "tpch",
]
