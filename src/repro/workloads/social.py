"""The social-graph workload of Example 1: ``person``, ``friend``, ``poi``.

This is the paper's motivating scenario (Facebook Graph Search): find hotels
under a price limit in cities where my friends live.  The generator mimics
the structural facts the paper relies on: every ``pid`` has at most
``max_friends`` friends (the Facebook 5000-friend limit behind access
constraint ``ϕ1``), every person lives in exactly one city (``ϕ2``), and POIs
are grouped by (type, city) with prices spread within each group (the ``ψ_i``
template family).
"""

from __future__ import annotations

import random
from typing import List

from ..access.builder import ConstraintSpec, FamilySpec
from ..relational.database import Database
from ..relational.distance import CATEGORICAL, STRING_PREFIX, numeric_scaled
from ..relational.relation import Relation
from ..relational.schema import Attribute, DatabaseSchema, RelationSchema
from .base import AttributeInfo, JoinEdge, Workload, numeric_bounds, sample_values

POI_TYPES = ("hotel", "bar", "cafe", "museum", "restaurant")
PRICE_RANGE = (10.0, 400.0)


def _schema() -> DatabaseSchema:
    price_span = PRICE_RANGE[1] - PRICE_RANGE[0]
    return DatabaseSchema(
        [
            RelationSchema(
                "person",
                [Attribute("pid"), Attribute("city")],
            ),
            RelationSchema(
                "friend",
                [Attribute("pid"), Attribute("fid")],
            ),
            RelationSchema(
                "poi",
                [
                    Attribute("address", STRING_PREFIX),
                    Attribute("type", CATEGORICAL),
                    Attribute("city"),
                    Attribute("price", numeric_scaled(price_span)),
                ],
            ),
        ]
    )


def generate(
    persons: int = 1000,
    pois: int = 5000,
    cities: int = 40,
    max_friends: int = 8,
    seed: int = 7,
) -> Workload:
    """Generate the social workload.

    Args:
        persons: number of people (and an equal number of friend-list owners).
        pois: number of points of interest.
        cities: number of distinct cities.
        max_friends: per-person friend cap (the ``ϕ1`` cardinality bound).
        seed: RNG seed (generation is deterministic given the arguments).
    """
    rng = random.Random(seed)
    schema = _schema()

    city_names = [f"city_{i:03d}" for i in range(cities)]
    person_rows = [(pid, rng.choice(city_names)) for pid in range(persons)]

    friend_rows = []
    for pid in range(persons):
        count = rng.randint(1, max_friends)
        friends = rng.sample(range(persons), min(count, persons))
        friend_rows.extend((pid, fid) for fid in friends if fid != pid)

    poi_rows = []
    for index in range(pois):
        city = rng.choice(city_names)
        poi_type = rng.choice(POI_TYPES)
        price = round(rng.uniform(*PRICE_RANGE), 2)
        poi_rows.append((f"{city}/street_{index % 97}/{index}", poi_type, city, price))

    database = Database(
        schema,
        {
            "person": Relation(schema.relation("person"), person_rows),
            "friend": Relation(schema.relation("friend"), friend_rows),
            "poi": Relation(schema.relation("poi"), poi_rows),
        },
    )

    constraints = [
        ConstraintSpec("friend", ("pid",), ("fid",), n=max_friends),
        ConstraintSpec("person", ("pid",), ("city",), n=1),
    ]
    families = [
        FamilySpec("poi", ("type", "city"), ("price", "address")),
        FamilySpec("poi", ("city",), ("type", "price", "address")),
        FamilySpec("poi", ("type",), ("city", "price", "address")),
    ]
    join_edges = [
        JoinEdge("friend", "fid", "person", "pid"),
        JoinEdge("friend", "pid", "person", "pid"),
        JoinEdge("person", "city", "poi", "city"),
    ]

    prices = [row[3] for row in poi_rows]
    low, high = numeric_bounds(prices)
    attributes = [
        AttributeInfo("person", "pid", "key", sample_values(range(persons), rng)),
        AttributeInfo("person", "city", "categorical", tuple(city_names[:12])),
        AttributeInfo("friend", "pid", "key", sample_values(range(persons), rng)),
        AttributeInfo("friend", "fid", "key", sample_values(range(persons), rng)),
        AttributeInfo("poi", "type", "categorical", POI_TYPES),
        AttributeInfo("poi", "city", "categorical", tuple(city_names[:12])),
        AttributeInfo("poi", "price", "numeric", low=low, high=high),
        AttributeInfo("poi", "address", "key"),
    ]

    return Workload(
        name="social",
        database=database,
        constraints=constraints,
        families=families,
        join_edges=join_edges,
        attributes=attributes,
    )


def example_queries() -> List[str]:
    """The queries of Example 1 (Q1 and Q2), parameterised for person 0."""
    q1 = (
        "select h.address, h.price "
        "from poi as h, friend as f, person as p "
        "where f.pid = 0 and f.fid = p.pid and p.city = h.city "
        "and h.type = 'hotel' and h.price <= 95"
    )
    q2 = "select p.city from friend as f, person as p where f.pid = 0 and f.fid = p.pid"
    return [q1, q2]
