"""Exception hierarchy for the BEAS reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Each subclass maps to one subsystem of the library.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A relation/database schema is malformed or used inconsistently."""


class QueryError(ReproError):
    """A query is syntactically or semantically invalid."""


class ParseError(QueryError):
    """The SQL-ish parser could not parse the input string."""


class AccessSchemaError(ReproError):
    """An access template or access schema is malformed or violated."""


class ConformanceError(AccessSchemaError):
    """A database instance does not conform to an access schema."""


class PlanError(ReproError):
    """A bounded query plan is malformed or cannot be generated."""


class BudgetExceededError(PlanError):
    """A plan attempted to access more tuples than its budget ``α·|D|``."""

    def __init__(self, accessed: int, budget: int) -> None:
        super().__init__(
            f"plan accessed {accessed} tuples, exceeding budget {budget}"
        )
        self.accessed = accessed
        self.budget = budget


class EvaluationError(ReproError):
    """A query plan or algebra expression failed during evaluation."""


class StorageError(ReproError):
    """The persistent storage tier failed or refused an operation."""


class CorruptShardError(StorageError, ValueError):
    """An on-disk dataset file failed structural or checksum validation.

    Subclasses :exc:`ValueError` as well, because pre-checksum callers
    treated every malformed dataset file as a ``ValueError`` — existing
    ``except ValueError`` handling keeps working.  ``quarantined_to`` is
    filled in when the opener moved the damaged file aside (injected
    faults never quarantine a healthy file; see :mod:`repro.faults`).
    """

    def __init__(
        self,
        path: str,
        reason: str,
        quarantined_to: "str | None" = None,
        injected: bool = False,
    ) -> None:
        super().__init__(f"corrupt dataset file {path!r}: {reason}")
        self.path = path
        self.reason = reason
        self.quarantined_to = quarantined_to
        self.injected = injected


class FaultInjectedError(ReproError):
    """An error raised on purpose by an active fault plan.

    Only ever raised while a :class:`repro.faults.FaultPlan` is installed;
    production code paths must treat it exactly like the real failure it
    stands in for (the whole point of injecting it).
    """


class ServingError(ReproError):
    """The query-serving layer is misconfigured or failed to serve."""


class ServerOverloadedError(ServingError):
    """Admission control rejected a query because the server is saturated.

    Raised only under the ``reject`` admission policy; ``queue`` blocks the
    caller instead and ``degrade-alpha`` serves a cheaper α.
    """

    def __init__(self, in_flight: int, max_concurrency: int) -> None:
        super().__init__(
            f"server overloaded: {in_flight} queries in flight "
            f"(max concurrency {max_concurrency})"
        )
        self.in_flight = in_flight
        self.max_concurrency = max_concurrency
