"""Deterministic, seedable fault injection for resilience testing.

The paper's contract is *graceful degradation*: a fault may cost served α
or latency, never correctness or availability.  This package makes that
testable.  Production seams carry named **injection probes** —
``faults.inject("parallel.worker.kill")`` — that are compiled to a no-op
fast path (one ``is None`` check) while no plan is installed, and fire
deterministically from a seeded per-site RNG while one is.  The chaos
harness (``benchmarks/bench_chaos.py``), the ``tests-chaos`` CI leg, and
the targeted resilience tests all drive the same probes, so the failure
paths they exercise are the exact branches production traffic would take.

**Sites.**  Every probe names a seam in :data:`KNOWN_SITES`; installing a
plan that names anything else raises :exc:`ValueError` (catching typos is
the point).  Sites prefixed ``test.`` are exempt — tests may invent them
freely.  The catalogue (see ``src/repro/faults/README.md``):

========================== ====================================================
``parallel.worker.kill``    worker process exits hard (``os._exit``) mid-task
``parallel.worker.slow``    worker sleeps ``arg`` seconds before the task
``parallel.dispatch.broken`` parent-side synthetic ``BrokenProcessPool`` at submit
``shm.publish.unlink``      a shard's shared-memory segment vanishes right
                            after publication (the unlink race)
``mmap.open.corrupt``       opening a dataset file raises
                            :exc:`~repro.errors.CorruptShardError` (marked
                            injected — healthy files are never quarantined)
``mmap.open.missing``       opening a dataset file raises ``FileNotFoundError``
``serving.cache.get``       the serving result/plan cache raises on lookup
``serving.cache.put``       the serving result/plan cache raises on store
========================== ====================================================

**Plan format** (``REPRO_FAULT_PLAN`` env override, :func:`set_fault_plan`
knob)::

    seed=42;parallel.worker.kill:p=0.1,count=3;parallel.worker.slow:p=0.2,arg=0.05
    mmap.open.corrupt:at=2|5

Segments are ``;``-separated.  ``seed=N`` seeds every per-site RNG; each
other segment is ``site:key=value,...`` with keys

* ``p`` — fire probability per call, in ``[0, 1]``;
* ``at`` — exact 1-based call numbers (``|``-separated) the site fires on,
  overriding ``p``;
* ``count`` — cap on total fires for the site;
* ``arg`` — a float the probe site interprets (sleep seconds, ...).

**Determinism.**  Each site draws from its own ``random.Random`` seeded by
``blake2b(seed | nonce | site)`` — independent of ``PYTHONHASHSEED`` and of
every other site, so adding a site to a plan never changes when existing
sites fire.  Given the same plan and the same sequence of probe calls, the
same calls fire — across runs, machines, and interpreter versions.  Worker
processes receive the active plan spec at pool creation with a ``nonce``
equal to the pool incarnation number, so a repaired worker's draws differ
from its dead predecessor's (a kill/heal cycle terminates) while remaining
reproducible for a fixed operation sequence from interpreter start.

Installing a plan resets the process pools (workers must pick the plan up);
clearing one does not — healed workers are spawned by slot repair and read
the cleared parent spec naturally.
"""

from __future__ import annotations

import hashlib
import os
import random
import sys
import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = [
    "KNOWN_SITES",
    "FaultRule",
    "FaultPlan",
    "active_spec",
    "fault_arg",
    "fault_stats",
    "get_fault_plan",
    "inject",
    "set_fault_plan",
]

# The audited seams.  A plan naming any other site (unless ``test.``-prefixed)
# is rejected — a typo'd site name would otherwise silently never fire.
KNOWN_SITES = frozenset(
    {
        "parallel.worker.kill",
        "parallel.worker.slow",
        "parallel.dispatch.broken",
        "shm.publish.unlink",
        "mmap.open.corrupt",
        "mmap.open.missing",
        "serving.cache.get",
        "serving.cache.put",
    }
)

_TEST_SITE_PREFIX = "test."


def _validate_site(site: str) -> str:
    if not isinstance(site, str) or not site:
        raise ValueError(f"fault site must be a non-empty string, got {site!r}")
    if site not in KNOWN_SITES and not site.startswith(_TEST_SITE_PREFIX):
        raise ValueError(
            f"unknown fault site {site!r}; known sites: "
            f"{', '.join(sorted(KNOWN_SITES))} (or any 'test.*' site)"
        )
    return site


@dataclass(frozen=True)
class FaultRule:
    """When one site fires: probability or exact schedule, cap, payload.

    ``at`` (1-based call numbers) overrides ``probability`` when non-empty;
    ``count`` caps total fires; ``arg`` is a site-interpreted float (sleep
    seconds for ``parallel.worker.slow``).  Validation happens here so a
    malformed rule can never be installed.
    """

    probability: Optional[float] = None
    count: Optional[int] = None
    at: Tuple[int, ...] = ()
    arg: Optional[float] = None

    def __post_init__(self) -> None:
        if self.probability is not None:
            p = float(self.probability)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"fault probability must be in [0, 1], got {p}")
            object.__setattr__(self, "probability", p)
        if self.count is not None:
            count = int(self.count)
            if count < 1:
                raise ValueError(f"fault count must be >= 1, got {count}")
            object.__setattr__(self, "count", count)
        schedule = tuple(sorted({int(n) for n in self.at}))
        if any(n < 1 for n in schedule):
            raise ValueError(f"fault schedule entries must be >= 1, got {self.at}")
        object.__setattr__(self, "at", schedule)
        if self.arg is not None:
            arg = float(self.arg)
            if not arg >= 0 or arg != arg or arg == float("inf"):
                raise ValueError(f"fault arg must be a finite float >= 0, got {self.arg}")
            object.__setattr__(self, "arg", arg)
        if self.probability is None and not self.at:
            raise ValueError("a fault rule needs a probability (p=) or a schedule (at=)")

    def spec(self) -> str:
        """This rule's canonical ``key=value,...`` spec fragment."""
        parts = []
        if self.at:
            parts.append("at=" + "|".join(str(n) for n in self.at))
        elif self.probability is not None:
            parts.append(f"p={self.probability:g}")
        if self.count is not None:
            parts.append(f"count={self.count}")
        if self.arg is not None:
            parts.append(f"arg={self.arg:g}")
        return ",".join(parts)


def _parse_rule(site: str, body: str) -> FaultRule:
    kwargs: Dict[str, object] = {}
    for assignment in body.split(","):
        assignment = assignment.strip()
        if not assignment:
            continue
        key, _, value = assignment.partition("=")
        key, value = key.strip(), value.strip()
        if not value:
            raise ValueError(f"fault rule for {site!r}: {assignment!r} has no value")
        try:
            if key == "p":
                kwargs["probability"] = float(value)
            elif key == "count":
                kwargs["count"] = int(value)
            elif key == "at":
                kwargs["at"] = tuple(int(n) for n in value.split("|"))
            elif key == "arg":
                kwargs["arg"] = float(value)
            else:
                raise ValueError(
                    f"fault rule for {site!r}: unknown key {key!r} "
                    "(expected p, count, at, or arg)"
                )
        except ValueError:
            raise
        except Exception as exc:  # int()/float() TypeErrors become ValueErrors
            raise ValueError(f"fault rule for {site!r}: bad value in {assignment!r}") from exc
    return FaultRule(**kwargs)


@dataclass
class FaultPlan:
    """A seeded set of per-site fault rules plus live fire-counting state.

    Deterministic: each site owns a ``random.Random`` seeded from
    ``blake2b(seed | nonce | site)``, so two plans built from the same spec
    and nonce fire on exactly the same probe calls.  Thread-safe: call
    counters and RNG draws are serialized per plan.
    """

    rules: Dict[str, FaultRule] = field(default_factory=dict)
    seed: int = 0
    nonce: str = ""

    def __post_init__(self) -> None:
        self.seed = int(self.seed)
        self.nonce = str(self.nonce)
        self.rules = {_validate_site(site): rule for site, rule in self.rules.items()}
        for site, rule in self.rules.items():
            if not isinstance(rule, FaultRule):
                raise ValueError(
                    f"rule for site {site!r} must be a FaultRule, got {type(rule).__name__}"
                )
        self._lock = threading.Lock()
        self._calls: Dict[str, int] = {}
        self._fires: Dict[str, int] = {}
        self._rngs: Dict[str, random.Random] = {}

    # -- parsing / serialization ------------------------------------------------
    @classmethod
    def parse(cls, spec: str, nonce: str = "") -> "FaultPlan":
        """Build a plan from its spec string (see the module docstring)."""
        if not isinstance(spec, str):
            raise ValueError(f"fault plan spec must be a string, got {type(spec).__name__}")
        seed = 0
        rules: Dict[str, FaultRule] = {}
        for segment in spec.split(";"):
            segment = segment.strip()
            if not segment:
                continue
            if segment.startswith("seed="):
                try:
                    seed = int(segment[len("seed="):])
                except Exception as exc:
                    raise ValueError(f"bad fault plan seed segment {segment!r}") from exc
                continue
            site, colon, body = segment.partition(":")
            site = site.strip()
            if not colon:
                raise ValueError(
                    f"bad fault plan segment {segment!r} (expected 'site:key=value,...')"
                )
            rules[_validate_site(site)] = _parse_rule(site, body)
        if not rules:
            raise ValueError(f"fault plan spec {spec!r} names no sites")
        return cls(rules=rules, seed=seed, nonce=nonce)

    def spec(self) -> str:
        """The canonical spec string (stable ordering; round-trips parse)."""
        segments = [f"seed={self.seed}"]
        segments.extend(
            f"{site}:{rule.spec()}" for site, rule in sorted(self.rules.items())
        )
        return ";".join(segments)

    def with_nonce(self, nonce: str) -> "FaultPlan":
        """A fresh plan (zeroed counters, new RNG streams) under ``nonce``."""
        return FaultPlan(rules=dict(self.rules), seed=self.seed, nonce=nonce)

    # -- firing ------------------------------------------------------------------
    def _rng(self, site: str) -> random.Random:
        rng = self._rngs.get(site)
        if rng is None:
            digest = hashlib.blake2b(
                f"{self.seed}|{self.nonce}|{site}".encode("utf-8"), digest_size=8
            ).digest()
            rng = random.Random(int.from_bytes(digest, "big"))
            self._rngs[site] = rng
        return rng

    def should_fire(self, site: str) -> bool:
        """Whether this probe call fires (advances the site's call counter)."""
        rule = self.rules.get(site)
        if rule is None:
            return False
        with self._lock:
            call = self._calls.get(site, 0) + 1
            self._calls[site] = call
            if rule.count is not None and self._fires.get(site, 0) >= rule.count:
                return False
            if rule.at:
                fired = call in rule.at
            else:
                fired = self._rng(site).random() < rule.probability
            if fired:
                self._fires[site] = self._fires.get(site, 0) + 1
            return fired

    def arg(self, site: str, default: float = 0.0) -> float:
        rule = self.rules.get(site)
        if rule is None or rule.arg is None:
            return default
        return rule.arg

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-site probe-call and fire counts (a snapshot copy)."""
        with self._lock:
            return {
                site: {
                    "calls": self._calls.get(site, 0),
                    "fires": self._fires.get(site, 0),
                }
                for site in sorted(self.rules)
            }


# ---------------------------------------------------------------------------
# The process-wide plan (REPRO_FAULT_PLAN knob)
# ---------------------------------------------------------------------------

_plan_lock = threading.Lock()


def _env_fault_plan(name: str) -> Optional[FaultPlan]:
    """Parse a fault-plan environment override (unset/blank means None)."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return None
    return FaultPlan.parse(raw.strip())


_plan: Optional[FaultPlan] = _env_fault_plan("REPRO_FAULT_PLAN")


def get_fault_plan() -> Optional[FaultPlan]:
    """The installed plan, or ``None`` (the fast-path default)."""
    return _plan


def set_fault_plan(
    plan: "Optional[FaultPlan | str]", reset_pools: bool = True
) -> Optional[FaultPlan]:
    """Install (or clear, with ``None``) the process fault plan.

    Accepts a :class:`FaultPlan` or a spec string; anything else — or a
    malformed spec, or an unknown site — raises :exc:`ValueError`.  Returns
    the previous plan.  Installing a non-``None`` plan retires the process
    pools so freshly spawned workers receive the plan spec; clearing one
    deliberately does not (healing worker incarnations are spawned by slot
    repair and naturally read the cleared spec).
    """
    global _plan
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    elif plan is not None and not isinstance(plan, FaultPlan):
        raise ValueError(
            f"fault plan must be a FaultPlan, a spec string, or None, "
            f"got {type(plan).__name__}"
        )
    with _plan_lock:
        previous = _plan
        _plan = plan
    if plan is not None and reset_pools:
        parallel = sys.modules.get(_PARALLEL_MODULE)
        if parallel is not None:
            parallel.reset_process_pool()
    return previous


_PARALLEL_MODULE = __name__.rsplit(".", 1)[0] + ".relational.parallel"


def _install_worker_plan(spec: Optional[str], nonce: str) -> None:
    """Adopt the parent's plan spec inside a worker process (no pool resets)."""
    global _plan
    plan = FaultPlan.parse(spec, nonce=nonce) if spec else None
    with _plan_lock:
        _plan = plan


def active_spec() -> Optional[str]:
    """The installed plan's spec string (for shipping to workers)."""
    plan = _plan
    return plan.spec() if plan is not None else None


def inject(site: str) -> bool:
    """Whether the named probe site fires now.

    The no-plan fast path is a single attribute load and ``is None`` check —
    cheap enough to leave probes permanently compiled into hot seams.
    """
    plan = _plan
    if plan is None:
        return False
    return plan.should_fire(site)


def fault_arg(site: str, default: float = 0.0) -> float:
    """The installed rule's ``arg`` for ``site`` (``default`` when absent)."""
    plan = _plan
    if plan is None:
        return default
    return plan.arg(site, default)


def fault_stats() -> Dict[str, Dict[str, int]]:
    """Per-site probe accounting of the installed plan (empty when none)."""
    plan = _plan
    if plan is None:
        return {}
    return plan.stats()
