"""Accuracy measures: RC (the paper's), MAC, F-measure and Hausdorff."""

from .fmeasure import FMeasureResult, f_measure
from .hausdorff import directed_distance, hausdorff_accuracy, hausdorff_distance
from .mac import MACResult, mac_accuracy, mac_distance
from .rc import (
    RCResult,
    RelevanceCandidate,
    coverage_distance,
    max_coverage_distance,
    rc_accuracy,
    relevance_candidates,
    relevance_distance,
)

__all__ = [
    "FMeasureResult",
    "MACResult",
    "RCResult",
    "RelevanceCandidate",
    "coverage_distance",
    "directed_distance",
    "f_measure",
    "hausdorff_accuracy",
    "hausdorff_distance",
    "mac_accuracy",
    "mac_distance",
    "max_coverage_distance",
    "rc_accuracy",
    "relevance_candidates",
    "relevance_distance",
]
