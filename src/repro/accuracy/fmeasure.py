"""Counting-based accuracy: precision, recall and the F-measure.

The paper uses the F-measure as the representative counting-based metric
(Example 2): ``precision = |S ∩ Q(D)| / |S|``, ``recall = |S ∩ Q(D)| / |Q(D)|``
and their harmonic mean.  Counting-based metrics treat any answer that is not
*exactly* an exact answer as worthless, which is why resource-bounded
approximations typically score 0 under them — the motivating observation for
the RC measure.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..relational.relation import Relation


@dataclass(frozen=True)
class FMeasureResult:
    """Precision, recall and F-measure of an approximate answer set."""

    precision: float
    recall: float
    f_measure: float


def f_measure(approx: Relation, exact: Relation) -> FMeasureResult:
    """Compute precision / recall / F-measure of ``approx`` against ``exact``.

    Conventions: when both sets are empty, all three values are 1 (the answer
    is trivially perfect); when exactly one is empty, precision/recall default
    to 0 where undefined and the F-measure is 0.
    """
    approx_set = approx.to_set()
    exact_set = exact.to_set()

    if not approx_set and not exact_set:
        return FMeasureResult(1.0, 1.0, 1.0)

    overlap = len(approx_set & exact_set)
    precision = overlap / len(approx_set) if approx_set else 0.0
    recall = overlap / len(exact_set) if exact_set else 0.0
    if precision + recall == 0:
        return FMeasureResult(precision, recall, 0.0)
    return FMeasureResult(precision, recall, 2 * precision * recall / (precision + recall))
