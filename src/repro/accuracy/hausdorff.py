"""Hausdorff distance between answer sets.

A classic distance-based comparison of two point sets [Huttenlocher et al.]:
the directed distance from ``A`` to ``B`` is ``max_{a∈A} min_{b∈B} d(a, b)``
and the Hausdorff distance is the maximum of the two directions.  The RC
measure's coverage component corresponds to the directed distance from the
exact answers to the approximate answers; Hausdorff symmetrises it.
"""

from __future__ import annotations

from ..relational.distance import INFINITY, tuple_distance
from ..relational.relation import Relation
from ..relational.schema import RelationSchema


def directed_distance(source: Relation, target: Relation, schema: RelationSchema) -> float:
    """``max_{a ∈ source} min_{b ∈ target} d(a, b)``."""
    if len(source) == 0:
        return 0.0
    if len(target) == 0:
        return INFINITY
    distances = [a.distance for a in schema.attributes]
    worst = 0.0
    target_rows = list(target.rows)
    for row in source:
        best = min(tuple_distance(row, other, distances) for other in target_rows)
        if best > worst:
            worst = best
        if worst == INFINITY:
            break
    return worst


def hausdorff_distance(approx: Relation, exact: Relation, schema: RelationSchema) -> float:
    """Symmetric Hausdorff distance between the two answer sets."""
    return max(
        directed_distance(approx, exact, schema),
        directed_distance(exact, approx, schema),
    )


def hausdorff_accuracy(approx: Relation, exact: Relation, schema: RelationSchema) -> float:
    """Hausdorff distance mapped to an accuracy in ``[0, 1]`` via ``1/(1+d)``."""
    d = hausdorff_distance(approx, exact, schema)
    return 0.0 if d == INFINITY else 1.0 / (1.0 + d)
