"""The RC (relevance / coverage) accuracy measure (Section 3).

Given a query ``Q``, a dataset ``D`` and a set ``S`` of approximate answers:

* **coverage** — for every exact answer ``t ∈ Q(D)``, the distance to the
  closest approximate answer: ``δ_cov(Q, S, t) = min_{s∈S} d(s, t)``;
  ``F_cov = 1 / (1 + max_t δ_cov)``.
* **relevance** — for every approximate answer ``s ∈ S``, how relevant it is
  under query relaxation:
  ``δ_rel(Q, D, s) = min_{r≥0} max(r, min_{t∈Q^r(D)} d(s, t))``;
  ``F_rel = 1 / (1 + max_s δ_rel)``.
* ``accuracy(S, Q, D) = min(F_rel, F_cov)``.

Edge cases follow the paper: ``F_cov = 1`` when ``Q(D) = ∅``; ``F_cov = 0``
(hence accuracy 0) when ``S = ∅`` but ``Q(D) ≠ ∅``.

Aggregate queries (Section 3.2) adjust the distances: group-by semantics
forbids duplicate group keys in ``S`` (relevance +∞ otherwise); for
``sum``/``count``/``avg`` relevance is computed on the group-key projection
``π_X(Q')`` only, while coverage compares both the group key and the
aggregate value (``d_agg``).

Relevance is evaluated through the per-tuple reformulation implemented in
:mod:`repro.algebra.relax`: the candidate set is the query with its relaxable
selections dropped, each candidate ``t`` carrying its minimum admitting
relaxation ``r(t)``, so ``δ_rel(s) = min_t max(r(t), d(s, t))``.

Both coverage and relevance are nearest-neighbour minimisations, so the hot
loops run through the distance kernels in :mod:`repro.relational.kernels`
(:class:`~repro.relational.kernels.NearestNeighbors`, and
:class:`RelevanceIndex` below) instead of scanning every answer pair;
per the kernels' exact-equivalence contract the distances — and hence every
RC score — are identical to the naive per-row min-scans
(:func:`coverage_distance`, :func:`relevance_distance`), which remain the
reference implementations.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..algebra.ast import Difference, GroupBy, Project, QueryNode, Union, resolve_attribute
from ..algebra.evaluator import DatabaseProvider, Evaluator
from ..algebra.predicates import AttrRef
from ..algebra.relax import RelaxationOracle, relaxed_query
from ..algebra.spc import maximal_induced_query, to_spc
from ..errors import QueryError
from ..relational.database import Database
from ..relational.distance import INFINITY, tuple_distance
from ..relational.kernels import NearestNeighbors, naive_min_distance
from ..relational.relation import Relation, Row
from ..relational.schema import RelationSchema


@dataclass(frozen=True)
class RCResult:
    """Outcome of an RC-measure evaluation."""

    relevance: float
    coverage: float
    accuracy: float
    max_relevance_distance: float
    max_coverage_distance: float

    def __str__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"RC(accuracy={self.accuracy:.3f}, F_rel={self.relevance:.3f}, "
            f"F_cov={self.coverage:.3f})"
        )


@dataclass(frozen=True)
class RelevanceCandidate:
    """One candidate tuple for relevance: its output values and required relaxation."""

    values: Row
    requirement: float


def _ratio(distance: float) -> float:
    """``1 / (1 + d)`` with the convention that an infinite distance gives 0."""
    if distance == INFINITY:
        return 0.0
    return 1.0 / (1.0 + distance)


# ---------------------------------------------------------------------------
# Coverage
# ---------------------------------------------------------------------------

def coverage_distance(
    exact_row: Row, approx_rows: Sequence[Row], schema: RelationSchema
) -> float:
    """``δ_cov`` of one exact answer w.r.t. the approximate answer set.

    Single-query reference implementation (a linear scan); the all-answers
    sweep :func:`max_coverage_distance` indexes ``approx`` once instead.
    """
    if not approx_rows:
        return INFINITY
    distances = [a.distance for a in schema.attributes]
    return naive_min_distance(exact_row, approx_rows, distances)


def max_coverage_distance(
    exact: Relation, approx: Relation, schema: RelationSchema
) -> float:
    """``max_t δ_cov(Q, S, t)`` over all exact answers.

    ``approx`` is indexed once (:class:`~repro.relational.kernels.NearestNeighbors`)
    and queried per exact answer; distances are identical to calling
    :func:`coverage_distance` per row.
    """
    if len(exact) == 0:
        return 0.0
    if len(approx) == 0:
        return INFINITY
    # Index straight off the approximate relation's storage backend: a
    # column-backed relation contributes its buffers without materializing
    # row tuples, and a sharded one is indexed shard by shard (the kernel
    # returns the per-shard minimum, equal to the global one).
    neighbors = NearestNeighbors.from_store(approx.store, schema.attributes)
    # The sweep over the exact answers likewise walks shard buffers directly
    # when the exact relation is sharded (max is order-insensitive, so the
    # shard-major visit order changes nothing).
    worst = 0.0
    for source in exact.store.shard_views():
        for exact_row in source.iter_rows():
            d = neighbors.min_distance(exact_row)
            if d > worst:
                worst = d
            if worst == INFINITY:
                return worst
    return worst


# ---------------------------------------------------------------------------
# Relevance candidates
# ---------------------------------------------------------------------------

def _spc_candidates(
    node: QueryNode,
    database: Database,
    output_refs: Sequence[AttrRef],
    relaxation_allowed: bool,
) -> List[RelevanceCandidate]:
    """Candidates for an SPC query: evaluate it without relaxable selections.

    The candidate query keeps the join structure and hard (trivial-distance)
    selections but drops relaxable selections and the final projection, so
    the relaxation requirement of every candidate can be computed from the
    full attribute values.
    """
    spc = to_spc(node)
    unprojected = to_spc(node)
    unprojected.output = ()
    base_ast = unprojected.to_ast()

    if relaxation_allowed:
        candidate_ast, dropped = relaxed_query(base_ast, database.schema)
    else:
        candidate_ast, dropped = base_ast, []

    evaluator = Evaluator(database.schema, DatabaseProvider(database))
    frame = evaluator.evaluate_frame(candidate_ast)
    oracle = RelaxationOracle(frame.schema, dropped)

    resolved = [resolve_attribute(frame.schema, ref) for ref in spc.output_or_all(database.schema)]
    if output_refs:
        resolved = [resolve_attribute(frame.schema, ref) for ref in output_refs]
    positions = frame.schema.positions(resolved)

    candidates: List[RelevanceCandidate] = []
    seen: Dict[Tuple[Row, float], None] = {}
    # Output values are extracted column-wise; full rows are only consulted
    # for the relaxation requirement.
    for row, values in zip(frame.rows, frame.key_tuples(positions)):
        requirement = oracle.requirement(row)
        if requirement == INFINITY:
            continue
        key = (values, requirement)
        if key in seen:
            continue
        seen[key] = None
        candidates.append(RelevanceCandidate(values=values, requirement=requirement))
    return candidates


def relevance_candidates(
    node: QueryNode,
    database: Database,
    output_refs: Sequence[AttrRef] = (),
    relaxation_allowed: bool = True,
) -> List[RelevanceCandidate]:
    """Relevance candidates of a (non-aggregate) RA query.

    * SPC queries: evaluated without relaxable selections (see above).
    * ``Q1 ∪ Q2``: the union of both sides' candidates.
    * ``Q1 − Q2``: the candidates of the *maximal induced* query ``Q̂`` (the
      positive side); relaxing a query never makes the negated side grow, so
      this is the sound candidate set and matches how the accuracy bound is
      derived for set difference (Section 6).
    """
    if isinstance(node, Union):
        left = relevance_candidates(node.left, database, output_refs, relaxation_allowed)
        right = relevance_candidates(node.right, database, output_refs, relaxation_allowed)
        return left + right
    if isinstance(node, Difference):
        induced = maximal_induced_query(node)
        return relevance_candidates(induced, database, output_refs, relaxation_allowed)
    if isinstance(node, GroupBy):
        raise QueryError("aggregate queries are handled by rc_accuracy directly")
    return _spc_candidates(node, database, output_refs, relaxation_allowed)


def relevance_distance(
    approx_row: Row,
    candidates: Sequence[RelevanceCandidate],
    schema: RelationSchema,
) -> float:
    """``δ_rel`` of one approximate answer given precomputed candidates.

    Single-query reference implementation (a linear scan); loops over many
    approximate answers should build a :class:`RelevanceIndex` once instead.
    """
    if not candidates:
        return INFINITY
    distances = [a.distance for a in schema.attributes]
    best = INFINITY
    for candidate in candidates:
        d = tuple_distance(approx_row, candidate.values, distances)
        score = max(candidate.requirement, d)
        if score < best:
            best = score
        if best == 0.0:
            break
    return best


class RelevanceIndex:
    """``δ_rel`` queries over a fixed candidate set, kernel-accelerated.

    Candidates are grouped by their relaxation requirement ``r(t)``; within a
    group ``min_t max(r, d(s, t)) = max(r, min_t d(s, t))``, so each group
    reduces to one nearest-neighbour query
    (:class:`~repro.relational.kernels.NearestNeighbors`).  Groups are
    visited in ascending requirement order and the sweep stops once the
    requirement alone can no longer improve the best score, mirroring the
    naive scan's early exit.  Distances are identical to
    :func:`relevance_distance` over the same candidates.
    """

    def __init__(
        self, candidates: Sequence[RelevanceCandidate], schema: RelationSchema
    ) -> None:
        self.schema = schema
        groups: Dict[float, List[Row]] = {}
        for candidate in candidates:
            groups.setdefault(candidate.requirement, []).append(candidate.values)
        self._requirements = sorted(groups)
        self._groups = groups
        self._neighbors: Dict[float, NearestNeighbors] = {}

    def distance(self, approx_row: Row) -> float:
        """``δ_rel`` of one approximate answer (equal to the naive scan)."""
        best = INFINITY
        for requirement in self._requirements:
            if requirement >= best:
                break
            neighbors = self._neighbors.get(requirement)
            if neighbors is None:
                neighbors = NearestNeighbors(
                    self._groups[requirement], self.schema.attributes
                )
                self._neighbors[requirement] = neighbors
            score = max(requirement, neighbors.min_distance(approx_row))
            if score < best:
                best = score
            if best == 0.0:
                break
        return best


# ---------------------------------------------------------------------------
# Full RC measure
# ---------------------------------------------------------------------------

def rc_accuracy(
    query: QueryNode,
    database: Database,
    approx: Relation,
    exact: Optional[Relation] = None,
    relaxation_allowed: bool = True,
) -> RCResult:
    """Compute the RC measure of approximate answers ``approx`` to ``query``."""
    from ..algebra.evaluator import evaluate_exact  # local import to avoid cycle

    if exact is None:
        exact = evaluate_exact(query, database)

    output_schema = query.output_schema(database.schema)

    if isinstance(query, GroupBy):
        return _rc_aggregate(query, database, approx, exact, output_schema, relaxation_allowed)

    cov_dist = max_coverage_distance(exact, approx, output_schema)

    if len(approx) == 0:
        rel_dist = 0.0
    else:
        candidates = _relevance_candidate_cache(query, database, relaxation_allowed)
        index = RelevanceIndex(candidates, output_schema)
        rel_dist = 0.0
        # Like the coverage sweep, relevance is an order-insensitive max, so
        # a sharded answer set is swept shard by shard over its own buffers.
        for source in approx.store.shard_views():
            for row in source.iter_rows():
                d = index.distance(row)
                if d > rel_dist:
                    rel_dist = d
                if rel_dist == INFINITY:
                    break
            if rel_dist == INFINITY:
                break

    return _result(rel_dist, cov_dist, exact, approx)


def _relevance_candidate_cache(
    query: QueryNode, database: Database, relaxation_allowed: bool
) -> List[RelevanceCandidate]:
    output_refs: Tuple[AttrRef, ...] = ()
    if isinstance(query, Project):
        output_refs = query.columns
    return relevance_candidates(query, database, output_refs, relaxation_allowed)


def _rc_aggregate(
    query: GroupBy,
    database: Database,
    approx: Relation,
    exact: Relation,
    output_schema: RelationSchema,
    relaxation_allowed: bool,
) -> RCResult:
    """RC measure for ``gpBy(Q', X, agg(V))`` queries (Section 3.2)."""
    # Coverage: output-schema tuple distance covers both cases — for min/max
    # it is δ_cov of Q' restricted to (X, V); for sum/count/avg it is
    # d_agg(s, t) = max(max_{A∈X} dis_A, |t[V] - s[V]|).
    cov_dist = max_coverage_distance(exact, approx, output_schema)

    if len(approx) == 0:
        rel_dist = 0.0
        return _result(rel_dist, cov_dist, exact, approx)

    group_positions = list(range(len(query.group_columns)))
    # Group-by semantics: duplicate group keys in S make those answers
    # irrelevant (+∞).  Keys are extracted column-wise from the backend.
    key_counts = Counter(approx.store.key_tuples(group_positions))
    duplicate_keys = {key for key, count in key_counts.items() if count > 1}

    needs_counts = query.aggregate.needs_counts
    if needs_counts:
        candidate_refs = query.group_columns
        compare_schema = output_schema.project(
            output_schema.attribute_names[: len(query.group_columns)], name="γ_keys"
        ) if query.group_columns else None
    else:
        candidate_refs = tuple(query.group_columns) + (query.agg_column,)
        compare_schema = output_schema

    candidates = relevance_candidates(
        query.child, database, candidate_refs, relaxation_allowed
    )
    index = RelevanceIndex(
        candidates, compare_schema if needs_counts and compare_schema else output_schema
    )

    rel_dist = 0.0
    # Shard-view sweep (order-insensitive max, like coverage): rows and
    # group keys are read from each partition's own column buffers.
    for source in approx.store.shard_views():
        for row, key in zip(source.iter_rows(), source.key_tuples(group_positions)):
            if key in duplicate_keys:
                rel_dist = INFINITY
                break
            if needs_counts:
                if compare_schema is None:
                    # No group-by columns (global aggregate): any answer is
                    # relevant as long as the child query has candidates.
                    d = 0.0 if candidates else INFINITY
                else:
                    d = index.distance(key)
            else:
                d = index.distance(row)
            if d > rel_dist:
                rel_dist = d
            if rel_dist == INFINITY:
                break
        if rel_dist == INFINITY:
            break

    return _result(rel_dist, cov_dist, exact, approx)


def _result(rel_dist: float, cov_dist: float, exact: Relation, approx: Relation) -> RCResult:
    coverage = 1.0 if len(exact) == 0 else _ratio(cov_dist)
    if len(approx) == 0 and len(exact) > 0:
        coverage = 0.0
    relevance = _ratio(rel_dist)
    accuracy = min(relevance, coverage)
    return RCResult(
        relevance=relevance,
        coverage=coverage,
        accuracy=accuracy,
        max_relevance_distance=rel_dist,
        max_coverage_distance=cov_dist,
    )
