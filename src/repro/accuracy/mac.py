"""MAC — the set-valued answer accuracy measure of Ioannidis & Poosala.

The histogram baseline of the paper (Histo, [27]) evaluates approximate
set-valued answers with MAC ("Match And Compare"): a symmetric, distance-based
comparison of the approximate and exact answer sets, where each element is
matched to its closest counterpart in the other set and the per-element
distances are averaged.  The paper normalises MAC accuracy into ``[0, 1]``;
we follow the same convention by mapping the averaged distance ``d`` to
``1 / (1 + d)``.

The exact matching procedure of [27] (a minimum-cost assignment) is replaced
by the standard closest-counterpart approximation, which is the form used in
follow-up work and is monotone in the same quantities; this is documented as
a substitution in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..relational.distance import INFINITY, tuple_distance
from ..relational.relation import Relation
from ..relational.schema import RelationSchema


@dataclass(frozen=True)
class MACResult:
    """MAC distance and its normalised accuracy."""

    distance: float
    accuracy: float


def mac_distance(approx: Relation, exact: Relation, schema: RelationSchema) -> float:
    """Average closest-counterpart distance, symmetrised over both directions."""
    if len(approx) == 0 and len(exact) == 0:
        return 0.0
    if len(approx) == 0 or len(exact) == 0:
        return INFINITY
    distances = [a.distance for a in schema.attributes]

    def directed_mean(source: Relation, target: Relation) -> float:
        target_rows = list(target.rows)
        total = 0.0
        for row in source:
            best = min(tuple_distance(row, other, distances) for other in target_rows)
            if best == INFINITY:
                return INFINITY
            total += best
        return total / len(source)

    forward = directed_mean(exact, approx)
    backward = directed_mean(approx, exact)
    if forward == INFINITY or backward == INFINITY:
        return INFINITY
    return (forward + backward) / 2.0


def mac_accuracy(approx: Relation, exact: Relation, schema: RelationSchema) -> MACResult:
    """MAC measure normalised to ``[0, 1]`` (1 = identical answer sets)."""
    d = mac_distance(approx, exact, schema)
    accuracy = 0.0 if d == INFINITY else 1.0 / (1.0 + d)
    return MACResult(distance=d, accuracy=accuracy)
