"""Cache backends for the query-serving layer.

The serving facade keeps two caches — answered :class:`~repro.core.framework.QueryResult`\\s
and compiled :class:`~repro.core.plan.BoundedPlan`\\s — behind one small
backend contract, mirroring how storage layouts sit behind
:func:`repro.relational.store.register_backend`.  A backend is a bounded
key/value map; the *keys* carry all the invalidation logic (they embed the
database's publication epoch, so entries computed before a mutation simply
stop being looked up — see ``serving/README.md``), which keeps the backend
contract tiny and dependency-free.

Backends ship in-tree:

``lru-ttl``
    The default: a thread-safe least-recently-used map with optional
    time-to-live expiry.

``none``
    A null cache that stores nothing — every lookup misses.  Selecting it
    turns caching off without any conditional code in the server.

Third parties register their own (memcached, disk, ...) with
:func:`register_cache_backend`; the process-wide default backend is the
:func:`set_result_cache` knob, overridable at import time via the
``REPRO_SERVING_CACHE`` environment variable.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from typing import Dict, Optional, Tuple, Type

# Sentinel distinguishing "not cached" from a cached ``None``.
MISSING = object()

DEFAULT_MAX_ENTRIES = 1024


class CacheBackend:
    """Contract every serving cache backend implements.

    Constructors must accept the uniform keyword signature
    ``(max_entries=..., ttl_seconds=...)`` so the server can instantiate any
    registered backend from configuration alone.  Implementations must be
    safe under concurrent access — the serving layer calls them from many
    request threads.
    """

    backend = "?"

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        ttl_seconds: Optional[float] = None,
    ) -> None:
        raise NotImplementedError

    def get(self, key: object) -> object:
        """The cached value for ``key``, or :data:`MISSING`."""
        raise NotImplementedError

    def put(self, key: object, value: object) -> None:
        """Store ``value`` under ``key`` (evicting as needed)."""
        raise NotImplementedError

    def invalidate(self, key: object) -> bool:
        """Drop one entry; returns whether it was present."""
        raise NotImplementedError

    def clear(self) -> None:
        """Drop every entry."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def info(self) -> dict:
        """Size / capacity / hit counters, for observability snapshots."""
        raise NotImplementedError


class LRUTTLCache(CacheBackend):
    """Bounded in-memory LRU cache with optional per-entry TTL expiry.

    Eviction is least-recently-used once ``max_entries`` is reached; when
    ``ttl_seconds`` is set, entries older than the TTL expire lazily at
    lookup time *and* are swept first on overflow — a ``put`` that would
    evict only discards a live entry after every dead one is gone (TTL is
    measured on the monotonic clock, so wall-clock jumps cannot resurrect
    or mass-expire entries).  All operations take one internal
    lock — the critical sections are a handful of dict operations, far
    cheaper than the plan/execute work the cache saves.
    """

    backend = "lru-ttl"

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        ttl_seconds: Optional[float] = None,
    ) -> None:
        max_entries = int(max_entries)
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError(f"ttl_seconds must be > 0, got {ttl_seconds}")
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds
        self._lock = threading.Lock()
        self._entries: "OrderedDict[object, Tuple[float, object]]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0

    def get(self, key: object) -> object:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return MISSING
            stamp, value = entry
            if (
                self.ttl_seconds is not None
                and time.monotonic() - stamp > self.ttl_seconds
            ):
                del self._entries[key]
                self._expirations += 1
                self._misses += 1
                return MISSING
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: object, value: object) -> None:
        with self._lock:
            now = time.monotonic()
            self._entries[key] = (now, value)
            self._entries.move_to_end(key)
            if len(self._entries) > self.max_entries and self.ttl_seconds is not None:
                # On overflow, drop dead entries before sacrificing live
                # ones: TTL-expired entries would never be served again
                # anyway, and counting them as expirations (not evictions)
                # keeps the two counters meaningful.
                expired = [
                    entry_key
                    for entry_key, (stamp, _) in self._entries.items()
                    if now - stamp > self.ttl_seconds
                ]
                for entry_key in expired:
                    del self._entries[entry_key]
                    self._expirations += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1

    def invalidate(self, key: object) -> bool:
        with self._lock:
            return self._entries.pop(key, MISSING) is not MISSING

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def info(self) -> dict:
        with self._lock:
            return {
                "backend": self.backend,
                "size": len(self._entries),
                "max_entries": self.max_entries,
                "ttl_seconds": self.ttl_seconds,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "expirations": self._expirations,
            }


class NullCache(CacheBackend):
    """A cache that caches nothing — every ``get`` misses, ``put`` is a no-op.

    Selecting it (``set_result_cache("none")`` or
    ``REPRO_SERVING_CACHE=none``) disables caching uniformly: the server
    code path is identical, only nothing is ever found.
    """

    backend = "none"

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        ttl_seconds: Optional[float] = None,
    ) -> None:
        self._misses = 0

    def get(self, key: object) -> object:
        self._misses += 1
        return MISSING

    def put(self, key: object, value: object) -> None:
        pass

    def invalidate(self, key: object) -> bool:
        return False

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def info(self) -> dict:
        return {
            "backend": self.backend,
            "size": 0,
            "max_entries": 0,
            "ttl_seconds": None,
            "hits": 0,
            "misses": self._misses,
            "evictions": 0,
            "expirations": 0,
        }


# ---------------------------------------------------------------------------
# Backend registry and process-wide default
# ---------------------------------------------------------------------------

_CACHE_BACKENDS: Dict[str, Type[CacheBackend]] = {
    LRUTTLCache.backend: LRUTTLCache,
    NullCache.backend: NullCache,
}

DEFAULT_RESULT_CACHE = LRUTTLCache.backend


def register_cache_backend(name: str, cache_class: Type[CacheBackend]) -> None:
    """Register a third-party :class:`CacheBackend` subclass under ``name``."""
    if not name:
        raise ValueError("cache backend name must be non-empty")
    _CACHE_BACKENDS[name] = cache_class


def list_cache_backends() -> Tuple[str, ...]:
    """Names of all registered cache backends (in registration order)."""
    return tuple(_CACHE_BACKENDS)


def cache_backend_class(name: str) -> Type[CacheBackend]:
    """The :class:`CacheBackend` subclass registered under ``name``."""
    try:
        return _CACHE_BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown cache backend {name!r}; available: {sorted(_CACHE_BACKENDS)}"
        ) from None


def _env_cache_backend(name: str) -> str:
    """Parse a cache-backend environment override (unset means the default)."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return DEFAULT_RESULT_CACHE
    backend = raw.strip().lower()
    if backend not in _CACHE_BACKENDS:
        raise ValueError(
            f"{name} must be one of {sorted(_CACHE_BACKENDS)}, got {raw!r}"
        )
    return backend


_result_cache_backend: str = _env_cache_backend("REPRO_SERVING_CACHE")


def get_result_cache() -> str:
    """The cache backend new :class:`~repro.serving.server.QueryServer`\\s use."""
    return _result_cache_backend


def set_result_cache(name: Optional[str]) -> str:
    """Set the default serving cache backend; returns the previous setting.

    ``None`` restores the default (``"lru-ttl"``); ``"none"`` disables
    caching for newly-built servers; an unregistered name raises
    :exc:`ValueError`.  ``REPRO_SERVING_CACHE`` overrides the default at
    import time.  Existing servers keep the cache instances they were built
    with.
    """
    global _result_cache_backend
    if name is None:
        name = DEFAULT_RESULT_CACHE
    cache_backend_class(name)  # validate
    previous = _result_cache_backend
    _result_cache_backend = name
    return previous


def make_cache(
    spec: object = None,
    max_entries: int = DEFAULT_MAX_ENTRIES,
    ttl_seconds: Optional[float] = None,
) -> CacheBackend:
    """Resolve a cache spec to a live backend instance.

    ``None`` builds the process default (:func:`get_result_cache`); a string
    builds that registered backend; a :class:`CacheBackend` instance is
    returned as-is (``max_entries`` / ``ttl_seconds`` are ignored for
    instances — they were fixed at construction).
    """
    if isinstance(spec, CacheBackend):
        return spec
    if spec is None:
        spec = get_result_cache()
    if not isinstance(spec, str):
        raise ValueError(
            f"cache spec must be None, a backend name, or a CacheBackend "
            f"instance, got {type(spec).__name__}"
        )
    return cache_backend_class(spec)(max_entries=max_entries, ttl_seconds=ttl_seconds)
