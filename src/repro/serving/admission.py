"""Admission control for the query-serving layer.

A BEAS deployment promises each query at most ``α·|D|`` tuple accesses —
but a *server* must also bound what concurrent queries cost in aggregate.
The :class:`AdmissionController` gates every request through one of three
policies:

``reject``
    Fail fast: a request arriving while ``max_concurrency`` queries are in
    flight raises :exc:`~repro.errors.ServerOverloadedError`.  Load
    shedding for callers with their own retry/fallback logic.

``queue``
    Block the caller until a slot frees (closed-loop backpressure).  The
    default — no request is ever refused or degraded, latency absorbs the
    load.

``degrade-alpha``
    Never block, never refuse: admit immediately but *step the resource
    ratio down* under load.  With ``f`` queries in flight the request is
    served at ``α · LADDER[min(f // max_concurrency, len(LADDER)-1)]`` —
    each full multiple of the concurrency target halves the budget, down to
    a 1/16 floor.  This is the paper's knob turned into a load response:
    under pressure the server trades the accuracy bound η (reported in the
    response envelope) for throughput, instead of latency or availability.

The process-wide default policy is the :func:`set_admission_policy` knob,
overridable at import time via ``REPRO_SERVING_POLICY``.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import ServerOverloadedError, ServingError

ADMISSION_POLICIES = ("reject", "queue", "degrade-alpha")
DEFAULT_ADMISSION_POLICY = "queue"
DEFAULT_MAX_CONCURRENCY = 8

# Multiplier ladder for degrade-alpha: rung k serves alpha * LADDER[k],
# where k = in_flight // max_concurrency (capped at the last rung).  Each
# halving halves the access budget; the 1/16 floor keeps budget_for() legal
# (alpha stays > 0) and the answer non-trivial.
ALPHA_DEGRADE_LADDER = (1.0, 0.5, 0.25, 0.125, 0.0625)


def _env_admission_policy(name: str) -> str:
    """Parse an admission-policy environment override (unset means default)."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return DEFAULT_ADMISSION_POLICY
    policy = raw.strip().lower()
    if policy not in ADMISSION_POLICIES:
        raise ValueError(
            f"{name} must be one of {ADMISSION_POLICIES}, got {raw!r}"
        )
    return policy


_admission_policy: str = _env_admission_policy("REPRO_SERVING_POLICY")


def get_admission_policy() -> str:
    """The admission policy new :class:`AdmissionController`\\s default to."""
    return _admission_policy


def set_admission_policy(policy: Optional[str]) -> str:
    """Set the default admission policy; returns the previous setting.

    ``None`` restores the default (``"queue"``); an unknown policy raises
    :exc:`ValueError`.  ``REPRO_SERVING_POLICY`` overrides the default at
    import time.  Existing controllers keep the policy they were built with.
    """
    global _admission_policy
    if policy is None:
        policy = DEFAULT_ADMISSION_POLICY
    if policy not in ADMISSION_POLICIES:
        raise ValueError(
            f"admission policy must be one of {ADMISSION_POLICIES}, got {policy!r}"
        )
    previous = _admission_policy
    _admission_policy = policy
    return previous


@dataclass(frozen=True)
class AdmissionTicket:
    """What admission decided for one request.

    Attributes:
        served_alpha: the resource ratio the query will actually run at
            (equal to the requested α except under ``degrade-alpha`` load).
        degraded: whether served_alpha was stepped down.
        ladder_rung: the degrade ladder rung used (0 = full α).
        wait_seconds: time spent blocked waiting for a slot (``queue`` only).
    """

    served_alpha: float
    degraded: bool
    ladder_rung: int
    wait_seconds: float


class AdmissionController:
    """Gates concurrent queries through one admission policy.

    Thread-safe; one instance guards one :class:`~repro.serving.server.QueryServer`.
    Callers must pair every successful :meth:`admit` with exactly one
    :meth:`release` (the server does this in a ``try/finally``).
    """

    def __init__(
        self,
        max_concurrency: Optional[int] = None,
        policy: Optional[str] = None,
        ladder: Tuple[float, ...] = ALPHA_DEGRADE_LADDER,
    ) -> None:
        if max_concurrency is None:
            max_concurrency = DEFAULT_MAX_CONCURRENCY
        max_concurrency = int(max_concurrency)
        if max_concurrency < 1:
            raise ValueError(
                f"max_concurrency must be >= 1, got {max_concurrency}"
            )
        if policy is None:
            policy = get_admission_policy()
        if policy not in ADMISSION_POLICIES:
            raise ValueError(
                f"admission policy must be one of {ADMISSION_POLICIES}, got {policy!r}"
            )
        ladder = tuple(ladder)
        if not ladder or ladder[0] != 1.0:
            raise ValueError("degrade ladder must start at multiplier 1.0")
        if any(not 0 < m <= 1 for m in ladder):
            raise ValueError(f"degrade multipliers must be in (0, 1], got {ladder}")
        if any(a <= b for a, b in zip(ladder, ladder[1:])):
            raise ValueError(f"degrade ladder must be strictly decreasing, got {ladder}")
        self.max_concurrency = max_concurrency
        self.policy = policy
        self.ladder = ladder
        self._lock = threading.Lock()
        self._slot_freed = threading.Condition(self._lock)
        self._in_flight = 0

    @property
    def in_flight(self) -> int:
        """Queries currently admitted and not yet released."""
        with self._lock:
            return self._in_flight

    def admit(self, alpha: float) -> AdmissionTicket:
        """Admit one query requesting resource ratio ``alpha``.

        Returns the :class:`AdmissionTicket` saying what α to serve at;
        raises :exc:`~repro.errors.ServerOverloadedError` under ``reject``
        when saturated; blocks under ``queue`` until a slot frees.
        """
        if not 0 < alpha <= 1:
            raise ValueError(f"resource ratio alpha must be in (0, 1], got {alpha}")
        with self._slot_freed:
            if self.policy == "reject":
                if self._in_flight >= self.max_concurrency:
                    raise ServerOverloadedError(self._in_flight, self.max_concurrency)
                self._in_flight += 1
                return AdmissionTicket(alpha, False, 0, 0.0)
            if self.policy == "queue":
                waited = 0.0
                if self._in_flight >= self.max_concurrency:
                    start = time.monotonic()
                    while self._in_flight >= self.max_concurrency:
                        self._slot_freed.wait()
                    waited = time.monotonic() - start
                self._in_flight += 1
                return AdmissionTicket(alpha, False, 0, waited)
            # degrade-alpha: admit immediately at a load-dependent rung.
            rung = min(self._in_flight // self.max_concurrency, len(self.ladder) - 1)
            self._in_flight += 1
            multiplier = self.ladder[rung]
            return AdmissionTicket(alpha * multiplier, rung > 0, rung, 0.0)

    def release(self) -> None:
        """Return one admission slot (wakes a queued waiter, if any)."""
        with self._slot_freed:
            if self._in_flight <= 0:
                raise ServingError("admission release() without a matching admit()")
            self._in_flight -= 1
            self._slot_freed.notify()
