"""Query-serving subsystem: caching, admission control, observability.

The batch API (:class:`repro.Beas`) answers one query at a time; this
package wraps it into a long-lived, concurrency-safe server.  See
``README.md`` in this directory for the architecture, the anatomy of the
cache keys (and why publication epochs make invalidation automatic), and
the α-degradation ladder.

Quick start::

    from repro.serving import QueryServer

    server = QueryServer(beas)
    envelope = server.serve("SELECT ...", alpha=0.1)
    envelope.rows          # the answer
    envelope.served_alpha  # may be < 0.1 under degrade-alpha load
    envelope.eta           # accuracy bound at the served alpha
"""

from .admission import (
    ADMISSION_POLICIES,
    ALPHA_DEGRADE_LADDER,
    DEFAULT_ADMISSION_POLICY,
    DEFAULT_MAX_CONCURRENCY,
    AdmissionController,
    AdmissionTicket,
    get_admission_policy,
    set_admission_policy,
)
from .cache import (
    DEFAULT_MAX_ENTRIES,
    DEFAULT_RESULT_CACHE,
    MISSING,
    CacheBackend,
    LRUTTLCache,
    NullCache,
    cache_backend_class,
    get_result_cache,
    list_cache_backends,
    make_cache,
    register_cache_backend,
    set_result_cache,
)
from .envelope import ServingEnvelope
from .server import DEFAULT_PROGRAM_CACHE_CAPACITY, QueryServer
from .stats import ServingStats, percentile

__all__ = [
    "ADMISSION_POLICIES",
    "ALPHA_DEGRADE_LADDER",
    "DEFAULT_ADMISSION_POLICY",
    "DEFAULT_MAX_CONCURRENCY",
    "DEFAULT_MAX_ENTRIES",
    "DEFAULT_PROGRAM_CACHE_CAPACITY",
    "DEFAULT_RESULT_CACHE",
    "MISSING",
    "AdmissionController",
    "AdmissionTicket",
    "CacheBackend",
    "LRUTTLCache",
    "NullCache",
    "QueryServer",
    "ServingEnvelope",
    "ServingStats",
    "cache_backend_class",
    "get_admission_policy",
    "get_result_cache",
    "list_cache_backends",
    "make_cache",
    "percentile",
    "register_cache_backend",
    "set_admission_policy",
    "set_result_cache",
]
