"""The response envelope the serving facade wraps every answer in.

A served answer needs more context than a bare
:class:`~repro.core.framework.QueryResult`: the client asked for one α but
admission control may have *served* another; the answer may have come from
cache (so its timings describe a past execution); and the cache key's
publication epoch says which version of the database it answers for.  The
envelope records all of it, so a client can always tell exactly what
guarantee its rows carry — the served α and its η bound, per the paper's
contract that approximation quality is *reported*, never silent.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.framework import QueryResult
from ..relational.relation import Relation


@dataclass(frozen=True)
class ServingEnvelope:
    """One served answer plus everything the serving layer decided about it.

    Attributes:
        result: the underlying :class:`QueryResult` (possibly shared with
            other envelopes when served from cache — treat as read-only).
        requested_alpha: the resource ratio the client asked for.
        served_alpha: the ratio the answer was computed at; lower than
            ``requested_alpha`` exactly when admission degraded the query.
        eta: the RC-accuracy bound of the served answer (``result.eta``,
            surfaced for convenience — it bounds accuracy at *served_alpha*).
        fingerprint: canonical query fingerprint used for cache keying.
        publication_epoch: the database epoch the answer was computed
            against; a mutation after this epoch means fresher answers
            exist (and will be computed on the next request, since the
            epoch is part of the cache key).
        result_cache_hit / plan_cache_hit: where the answer / plan came
            from.  ``plan_cache_hit`` is always ``False`` on a result hit
            (the plan cache is not consulted).
        degraded: whether the served α is lower than the requested one —
            stepped down by admission load or by the executor breaker.
        degraded_reason: why (``None`` when not degraded):
            ``"admission-load"`` for the degrade-alpha admission ladder,
            ``"executor-breaker-open"`` / ``"executor-breaker-half-open"``
            when the process-executor circuit breaker is recovering and the
            server trades α for the slower fallback path's latency.
        wait_seconds: time spent queued for admission (``queue`` policy).
        serve_seconds: total wall-clock time inside the server for this
            request, including admission wait and cache lookups.
        affinity_hits / affinity_misses: shard tasks this request's
            computation submitted to their rendezvous-home worker (hits)
            versus tasks the affinity router stole to an idle worker
            (misses) — deltas of
            :func:`repro.relational.parallel.affinity_stats` around the
            execution.  Both are 0 on a result-cache hit (nothing was
            computed) and whenever the affinity router is inactive
            (serial/thread executors, or ``set_shard_affinity("off")``).
        dispatch_retries: process-dispatch retry rounds
            (:func:`repro.relational.parallel.dispatch_stats` delta) spent
            computing this answer — 0 on cache hits and on the
            serial/thread paths; non-zero means a worker failure was
            absorbed by re-routing rather than surfacing to the client.
    """

    result: QueryResult
    requested_alpha: float
    served_alpha: float
    eta: float
    fingerprint: str
    publication_epoch: int
    result_cache_hit: bool
    plan_cache_hit: bool
    degraded: bool
    wait_seconds: float
    serve_seconds: float
    affinity_hits: int = 0
    affinity_misses: int = 0
    degraded_reason: "str | None" = None
    dispatch_retries: int = 0

    @property
    def rows(self) -> Relation:
        """The answer tuples ``ξ_α(D)`` (shared with ``result`` — read-only)."""
        return self.result.rows

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        source = "cache" if self.result_cache_hit else "computed"
        return (
            f"ServingEnvelope({len(self.rows)} rows, {source}, "
            f"alpha={self.served_alpha:g}/{self.requested_alpha:g}, "
            f"eta={self.eta:.3f}, epoch={self.publication_epoch})"
        )
