"""The long-lived serving facade over :class:`~repro.core.framework.Beas`.

:class:`QueryServer` answers the same API as ``Beas.answer`` — a query and
a resource ratio α — but is built for *many* requests over a long lifetime:

1. every request passes **admission control**
   (:class:`~repro.serving.admission.AdmissionController`: reject, queue,
   or degrade α under load);
2. answers are **cached** keyed by
   ``(fingerprint, served α, enforce_budget, publication epoch)`` — the
   epoch term makes mutation invalidation automatic (see
   ``serving/README.md`` for the key anatomy);
3. on a result miss, the **plan cache** (keyed by fingerprint × budget
   only — a :class:`~repro.core.framework.BoundedPlan` depends on nothing
   else, so a mutation that leaves ``⌊α·|D|⌋`` unchanged keeps its plans)
   skips re-planning, and execution reuses compiled mask programs
   via the :func:`repro.algebra.predicates.set_program_cache_capacity`
   knob (enabled by the server unless already configured);
4. everything is **observable** through
   :class:`~repro.serving.stats.ServingStats`.

Resilience: a fault anywhere below the server costs served α or latency,
never correctness or availability.  Cache backends are consulted through
guarded wrappers — an erroring backend (or the ``serving.cache.get`` /
``serving.cache.put`` fault sites) is treated as a miss and counted, and
the request recomputes.  When the process-executor circuit breaker
(:func:`repro.relational.parallel.breaker_state`) is open or probing, the
server steps served α one extra rung down (the *degraded-mode ladder*) so
requests riding the slower thread fallback cost proportionally less; the
envelope reports ``degraded_reason`` and any dispatch retries spent.

Thread-safe: one server instance is meant to be shared by many request
threads (the concurrency harness in ``benchmarks/bench_serving.py`` drives
it exactly that way).
"""

from __future__ import annotations

import time
from typing import Optional

from .. import faults
from ..algebra import predicates
from ..algebra.ast import query_fingerprint
from ..core.framework import Beas, QueryLike
from ..errors import FaultInjectedError
from ..relational import parallel
from ..relational.store import get_shard_executor
from .admission import AdmissionController
from .cache import DEFAULT_MAX_ENTRIES, MISSING, CacheBackend, make_cache
from .envelope import ServingEnvelope
from .stats import ServingStats

# Compiled-program cache capacity the server enables when the knob is still
# at its batch default (0 = disabled).  A few hundred programs covers any
# realistic set of hot query shapes; each entry is a handful of small frozen
# binder objects.
DEFAULT_PROGRAM_CACHE_CAPACITY = 256


class QueryServer:
    """Serve α-bounded answers for one :class:`Beas` instance.

    Args:
        beas: the engine (database + access schema) to serve.
        result_cache / plan_cache: a :class:`CacheBackend` instance, a
            registered backend name, or ``None`` for the process default
            (:func:`repro.serving.cache.get_result_cache` — overridable via
            ``REPRO_SERVING_CACHE``).
        admission: a preconfigured :class:`AdmissionController`; ``None``
            builds one with the default concurrency target and the process
            default policy (:func:`repro.serving.admission.get_admission_policy`
            — overridable via ``REPRO_SERVING_POLICY``).
        stats: a :class:`ServingStats` to record into; ``None`` builds one.
        max_entries / ttl_seconds: forwarded when caches are built from a
            name or the default (ignored for instances).
        program_cache_capacity: compiled-mask-program cache size to enable
            at construction; only applied when the process-wide knob is
            still 0 (never shrinks a capacity someone already set).
            ``None`` leaves the knob alone.
    """

    def __init__(
        self,
        beas: Beas,
        result_cache: object = None,
        plan_cache: object = None,
        admission: Optional[AdmissionController] = None,
        stats: Optional[ServingStats] = None,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        ttl_seconds: Optional[float] = None,
        program_cache_capacity: Optional[int] = DEFAULT_PROGRAM_CACHE_CAPACITY,
    ) -> None:
        self.beas = beas
        self.result_cache: CacheBackend = make_cache(result_cache, max_entries, ttl_seconds)
        self.plan_cache: CacheBackend = make_cache(plan_cache, max_entries, ttl_seconds)
        self.admission = admission if admission is not None else AdmissionController()
        self.stats = stats if stats is not None else ServingStats()
        if (
            program_cache_capacity is not None
            and predicates.get_program_cache_capacity() == 0
        ):
            predicates.set_program_cache_capacity(program_cache_capacity)

    # -- serving -----------------------------------------------------------------
    def serve(
        self,
        query: QueryLike,
        alpha: float,
        enforce_budget: bool = True,
    ) -> ServingEnvelope:
        """Answer ``query`` at (up to) resource ratio ``alpha``.

        Semantically identical to ``beas.answer(query, alpha)`` except that
        admission control may serve a degraded α (reported in the envelope)
        and identical requests against an unchanged database are answered
        from cache — the cached rows are bit-identical to a fresh
        computation, because the cache key pins query shape, α, budget
        enforcement *and* the database's publication epoch.
        """
        start = time.perf_counter()
        ticket = self.admission.admit(alpha)
        try:
            envelope = self._serve_admitted(query, alpha, ticket, enforce_budget, start)
        finally:
            self.admission.release()
        self.stats.record_request(
            seconds=envelope.serve_seconds,
            served_alpha=envelope.served_alpha,
            result_cache_hit=envelope.result_cache_hit,
            plan_cache_hit=envelope.plan_cache_hit,
            degraded=envelope.degraded,
            wait_seconds=envelope.wait_seconds,
        )
        if envelope.dispatch_retries:
            self.stats.count("dispatch_retries", envelope.dispatch_retries)
        if envelope.degraded_reason is not None:
            self.stats.count(f"degraded[{envelope.degraded_reason}]")
        return envelope

    # -- resilience helpers ------------------------------------------------------
    def _cache_get(self, cache, key, kind: str):
        """Guarded cache read: an erroring backend is a miss, never a failure."""
        try:
            if faults.inject("serving.cache.get"):
                raise FaultInjectedError(f"injected {kind}-cache get fault")
            return cache.get(key)
        except Exception:
            self.stats.count(f"{kind}_cache_errors")
            return MISSING

    def _cache_put(self, cache, key, value, kind: str) -> None:
        """Guarded cache write: a failed put only costs the next request."""
        try:
            if faults.inject("serving.cache.put"):
                raise FaultInjectedError(f"injected {kind}-cache put fault")
            cache.put(key, value)
        except Exception:
            self.stats.count(f"{kind}_cache_errors")

    def _breaker_degrade(self, alpha: float, served_alpha: float):
        """One extra ladder rung while the process executor is unhealthy.

        Returns ``(served_alpha, reason)``.  Only the process executor
        routes through the breaker; when it is open (cooling down) or
        half-open (probing), computation rides the slower thread fallback —
        so the server halves the served α (floored at the admission
        ladder's bottom rung) to keep per-request cost bounded, exactly the
        paper's accuracy-for-resources trade applied to failure instead of
        load.
        """
        if get_shard_executor() != "process":
            return served_alpha, None
        state = parallel.breaker_state()["state"]
        if state == "closed":
            return served_alpha, None
        floor = alpha * self.admission.ladder[-1]
        stepped = max(floor, served_alpha / 2.0)
        if stepped >= served_alpha:
            return served_alpha, None
        return stepped, f"executor-breaker-{state}"

    def _serve_admitted(self, query, alpha, ticket, enforce_budget, start):
        """The cache-then-compute path, run while holding an admission slot."""
        ast = self.beas._as_ast(query)
        fingerprint = query_fingerprint(ast)
        epoch = self.beas.database.publication_epoch
        served_alpha = ticket.served_alpha
        degraded_reason = "admission-load" if ticket.degraded else None
        served_alpha, breaker_reason = self._breaker_degrade(alpha, served_alpha)
        if breaker_reason is not None:
            degraded_reason = breaker_reason
        degraded = degraded_reason is not None

        result_key = (fingerprint, served_alpha, enforce_budget, epoch)
        cached = self._cache_get(self.result_cache, result_key, "result")
        if cached is not MISSING:
            return ServingEnvelope(
                result=cached,
                requested_alpha=alpha,
                served_alpha=served_alpha,
                eta=cached.eta,
                fingerprint=fingerprint,
                publication_epoch=epoch,
                result_cache_hit=True,
                plan_cache_hit=False,
                degraded=degraded,
                wait_seconds=ticket.wait_seconds,
                serve_seconds=time.perf_counter() - start,
                degraded_reason=degraded_reason,
            )

        budget = self.beas.database.budget_for(served_alpha)
        # No epoch term: a BoundedPlan is a function of the query shape and
        # the access budget alone, so plans survive mutations that leave
        # ⌊α·|D|⌋ unchanged.  Results stay epoch-keyed above.
        plan_key = (fingerprint, budget)
        plan = self._cache_get(self.plan_cache, plan_key, "plan")
        plan_hit = plan is not MISSING
        if not plan_hit:
            plan = None

        # Router counters are process-global, so under concurrent requests
        # the delta attributes overlapping submissions to whichever request
        # reads last — good enough for the envelope's observability role.
        before = parallel.affinity_stats()
        retries_before = parallel.dispatch_stats()["retries"]
        result = self.beas.answer(ast, served_alpha, enforce_budget, plan=plan)
        after = parallel.affinity_stats()
        retries_after = parallel.dispatch_stats()["retries"]
        if not plan_hit:
            self._cache_put(self.plan_cache, plan_key, result.plan, "plan")
        self._cache_put(self.result_cache, result_key, result, "result")
        return ServingEnvelope(
            result=result,
            requested_alpha=alpha,
            served_alpha=served_alpha,
            eta=result.eta,
            fingerprint=fingerprint,
            publication_epoch=epoch,
            result_cache_hit=False,
            plan_cache_hit=plan_hit,
            degraded=degraded,
            wait_seconds=ticket.wait_seconds,
            serve_seconds=time.perf_counter() - start,
            affinity_hits=after["hits"] - before["hits"],
            affinity_misses=after["steals"] - before["steals"],
            degraded_reason=degraded_reason,
            dispatch_retries=retries_after - retries_before,
        )

    # -- maintenance --------------------------------------------------------------
    def clear_caches(self) -> None:
        """Drop every cached result and plan (stats are kept)."""
        self.result_cache.clear()
        self.plan_cache.clear()

    def cache_info(self) -> dict:
        """Result- and plan-cache internals plus the live admission load.

        The ``dispatch`` section (retry/timeout counters and the breaker
        snapshot) and the ``faults`` section (active fault-plan fire
        counts, ``None`` when no plan is installed) make one call enough to
        diagnose a degraded server.
        """
        return {
            "result_cache": self.result_cache.info(),
            "plan_cache": self.plan_cache.info(),
            "in_flight": self.admission.in_flight,
            "policy": self.admission.policy,
            "max_concurrency": self.admission.max_concurrency,
            "program_cache": predicates.program_cache_info(),
            "affinity": parallel.affinity_stats(),
            "dispatch": parallel.dispatch_stats(),
            "faults": faults.fault_stats(),
        }
