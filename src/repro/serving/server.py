"""The long-lived serving facade over :class:`~repro.core.framework.Beas`.

:class:`QueryServer` answers the same API as ``Beas.answer`` — a query and
a resource ratio α — but is built for *many* requests over a long lifetime:

1. every request passes **admission control**
   (:class:`~repro.serving.admission.AdmissionController`: reject, queue,
   or degrade α under load);
2. answers are **cached** keyed by
   ``(fingerprint, served α, enforce_budget, publication epoch)`` — the
   epoch term makes mutation invalidation automatic (see
   ``serving/README.md`` for the key anatomy);
3. on a result miss, the **plan cache** (keyed by fingerprint × budget
   only — a :class:`~repro.core.framework.BoundedPlan` depends on nothing
   else, so a mutation that leaves ``⌊α·|D|⌋`` unchanged keeps its plans)
   skips re-planning, and execution reuses compiled mask programs
   via the :func:`repro.algebra.predicates.set_program_cache_capacity`
   knob (enabled by the server unless already configured);
4. everything is **observable** through
   :class:`~repro.serving.stats.ServingStats`.

Thread-safe: one server instance is meant to be shared by many request
threads (the concurrency harness in ``benchmarks/bench_serving.py`` drives
it exactly that way).
"""

from __future__ import annotations

import time
from typing import Optional

from ..algebra import predicates
from ..algebra.ast import query_fingerprint
from ..core.framework import Beas, QueryLike
from ..relational import parallel
from .admission import AdmissionController
from .cache import DEFAULT_MAX_ENTRIES, MISSING, CacheBackend, make_cache
from .envelope import ServingEnvelope
from .stats import ServingStats

# Compiled-program cache capacity the server enables when the knob is still
# at its batch default (0 = disabled).  A few hundred programs covers any
# realistic set of hot query shapes; each entry is a handful of small frozen
# binder objects.
DEFAULT_PROGRAM_CACHE_CAPACITY = 256


class QueryServer:
    """Serve α-bounded answers for one :class:`Beas` instance.

    Args:
        beas: the engine (database + access schema) to serve.
        result_cache / plan_cache: a :class:`CacheBackend` instance, a
            registered backend name, or ``None`` for the process default
            (:func:`repro.serving.cache.get_result_cache` — overridable via
            ``REPRO_SERVING_CACHE``).
        admission: a preconfigured :class:`AdmissionController`; ``None``
            builds one with the default concurrency target and the process
            default policy (:func:`repro.serving.admission.get_admission_policy`
            — overridable via ``REPRO_SERVING_POLICY``).
        stats: a :class:`ServingStats` to record into; ``None`` builds one.
        max_entries / ttl_seconds: forwarded when caches are built from a
            name or the default (ignored for instances).
        program_cache_capacity: compiled-mask-program cache size to enable
            at construction; only applied when the process-wide knob is
            still 0 (never shrinks a capacity someone already set).
            ``None`` leaves the knob alone.
    """

    def __init__(
        self,
        beas: Beas,
        result_cache: object = None,
        plan_cache: object = None,
        admission: Optional[AdmissionController] = None,
        stats: Optional[ServingStats] = None,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        ttl_seconds: Optional[float] = None,
        program_cache_capacity: Optional[int] = DEFAULT_PROGRAM_CACHE_CAPACITY,
    ) -> None:
        self.beas = beas
        self.result_cache: CacheBackend = make_cache(result_cache, max_entries, ttl_seconds)
        self.plan_cache: CacheBackend = make_cache(plan_cache, max_entries, ttl_seconds)
        self.admission = admission if admission is not None else AdmissionController()
        self.stats = stats if stats is not None else ServingStats()
        if (
            program_cache_capacity is not None
            and predicates.get_program_cache_capacity() == 0
        ):
            predicates.set_program_cache_capacity(program_cache_capacity)

    # -- serving -----------------------------------------------------------------
    def serve(
        self,
        query: QueryLike,
        alpha: float,
        enforce_budget: bool = True,
    ) -> ServingEnvelope:
        """Answer ``query`` at (up to) resource ratio ``alpha``.

        Semantically identical to ``beas.answer(query, alpha)`` except that
        admission control may serve a degraded α (reported in the envelope)
        and identical requests against an unchanged database are answered
        from cache — the cached rows are bit-identical to a fresh
        computation, because the cache key pins query shape, α, budget
        enforcement *and* the database's publication epoch.
        """
        start = time.perf_counter()
        ticket = self.admission.admit(alpha)
        try:
            envelope = self._serve_admitted(query, alpha, ticket, enforce_budget, start)
        finally:
            self.admission.release()
        self.stats.record_request(
            seconds=envelope.serve_seconds,
            served_alpha=envelope.served_alpha,
            result_cache_hit=envelope.result_cache_hit,
            plan_cache_hit=envelope.plan_cache_hit,
            degraded=envelope.degraded,
            wait_seconds=envelope.wait_seconds,
        )
        return envelope

    def _serve_admitted(self, query, alpha, ticket, enforce_budget, start):
        """The cache-then-compute path, run while holding an admission slot."""
        ast = self.beas._as_ast(query)
        fingerprint = query_fingerprint(ast)
        epoch = self.beas.database.publication_epoch
        served_alpha = ticket.served_alpha

        result_key = (fingerprint, served_alpha, enforce_budget, epoch)
        cached = self.result_cache.get(result_key)
        if cached is not MISSING:
            return ServingEnvelope(
                result=cached,
                requested_alpha=alpha,
                served_alpha=served_alpha,
                eta=cached.eta,
                fingerprint=fingerprint,
                publication_epoch=epoch,
                result_cache_hit=True,
                plan_cache_hit=False,
                degraded=ticket.degraded,
                wait_seconds=ticket.wait_seconds,
                serve_seconds=time.perf_counter() - start,
            )

        budget = self.beas.database.budget_for(served_alpha)
        # No epoch term: a BoundedPlan is a function of the query shape and
        # the access budget alone, so plans survive mutations that leave
        # ⌊α·|D|⌋ unchanged.  Results stay epoch-keyed above.
        plan_key = (fingerprint, budget)
        plan = self.plan_cache.get(plan_key)
        plan_hit = plan is not MISSING
        if not plan_hit:
            plan = None

        # Router counters are process-global, so under concurrent requests
        # the delta attributes overlapping submissions to whichever request
        # reads last — good enough for the envelope's observability role.
        before = parallel.affinity_stats()
        result = self.beas.answer(ast, served_alpha, enforce_budget, plan=plan)
        after = parallel.affinity_stats()
        if not plan_hit:
            self.plan_cache.put(plan_key, result.plan)
        self.result_cache.put(result_key, result)
        return ServingEnvelope(
            result=result,
            requested_alpha=alpha,
            served_alpha=served_alpha,
            eta=result.eta,
            fingerprint=fingerprint,
            publication_epoch=epoch,
            result_cache_hit=False,
            plan_cache_hit=plan_hit,
            degraded=ticket.degraded,
            wait_seconds=ticket.wait_seconds,
            serve_seconds=time.perf_counter() - start,
            affinity_hits=after["hits"] - before["hits"],
            affinity_misses=after["steals"] - before["steals"],
        )

    # -- maintenance --------------------------------------------------------------
    def clear_caches(self) -> None:
        """Drop every cached result and plan (stats are kept)."""
        self.result_cache.clear()
        self.plan_cache.clear()

    def cache_info(self) -> dict:
        """Result- and plan-cache internals plus the live admission load."""
        return {
            "result_cache": self.result_cache.info(),
            "plan_cache": self.plan_cache.info(),
            "in_flight": self.admission.in_flight,
            "policy": self.admission.policy,
            "max_concurrency": self.admission.max_concurrency,
            "program_cache": predicates.program_cache_info(),
            "affinity": parallel.affinity_stats(),
        }
