"""Serving observability: counters, latency percentiles, served-α histogram.

One :class:`ServingStats` instance rides inside each
:class:`~repro.serving.server.QueryServer` and records every request —
cache hits and misses for both caches, admission outcomes (rejections,
queue waits, α degradations), per-query wall-clock latency and the
histogram of α values actually served.  :meth:`ServingStats.snapshot`
renders the whole state as one plain dict, which is exactly what the
concurrency harness (``benchmarks/bench_serving.py``) embeds in the
``serving`` section of ``BENCH_kernels.json``.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Sequence

# Latency samples kept for percentile estimation: a ring buffer over the
# most recent requests.  Counters keep counting past the cap; only the
# percentile window is bounded.
DEFAULT_MAX_LATENCY_SAMPLES = 100_000


def percentile(samples: Sequence[float], q: float) -> Optional[float]:
    """The ``q``-quantile (0 < q <= 1) of ``samples`` by nearest-rank.

    Returns ``None`` on an empty sample set; nearest-rank keeps the result
    an actual observed latency (no interpolation), the convention QPS
    benchmarks usually report.
    """
    if not 0 < q <= 1:
        raise ValueError(f"quantile must be in (0, 1], got {q}")
    if not samples:
        return None
    ordered = sorted(samples)
    rank = max(1, math.ceil(len(ordered) * q))
    return ordered[rank - 1]


class ServingStats:
    """Thread-safe counters and timings for one serving facade.

    All mutation goes through :meth:`record_request` / :meth:`count`; reads
    go through :meth:`snapshot`.  The lock only guards plain counter and
    list updates, never query execution.
    """

    def __init__(self, max_latency_samples: int = DEFAULT_MAX_LATENCY_SAMPLES) -> None:
        max_latency_samples = int(max_latency_samples)
        if max_latency_samples < 1:
            raise ValueError(
                f"max_latency_samples must be >= 1, got {max_latency_samples}"
            )
        self.max_latency_samples = max_latency_samples
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._latencies: List[float] = []
        self._latency_pos = 0
        self._wait_seconds_total = 0.0
        self._served_alpha_hist: Dict[float, int] = {}

    def count(self, name: str, increment: int = 1) -> None:
        """Bump one named counter (creates it at 0 on first use)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + increment

    def record_request(
        self,
        seconds: float,
        served_alpha: float,
        result_cache_hit: bool,
        plan_cache_hit: bool,
        degraded: bool,
        wait_seconds: float = 0.0,
    ) -> None:
        """Record one served request end to end.

        Latency samples land in a ring buffer holding the *most recent*
        ``max_latency_samples`` observations, so the reported percentiles
        track a sliding window rather than freezing on the first samples
        ever taken.
        """
        with self._lock:
            self._counters["requests"] = self._counters.get("requests", 0) + 1
            key = "result_cache_hits" if result_cache_hit else "result_cache_misses"
            self._counters[key] = self._counters.get(key, 0) + 1
            if not result_cache_hit:
                # The plan cache is only consulted on a result miss.
                key = "plan_cache_hits" if plan_cache_hit else "plan_cache_misses"
                self._counters[key] = self._counters.get(key, 0) + 1
            if degraded:
                self._counters["degraded"] = self._counters.get("degraded", 0) + 1
            if wait_seconds > 0:
                self._counters["queued"] = self._counters.get("queued", 0) + 1
                self._wait_seconds_total += wait_seconds
            if len(self._latencies) < self.max_latency_samples:
                self._latencies.append(seconds)
            else:
                # Ring buffer: overwrite the oldest sample so percentiles
                # reflect the latest window, not the first 100k requests.
                self._latencies[self._latency_pos] = seconds
                self._latency_pos = (self._latency_pos + 1) % self.max_latency_samples
            self._served_alpha_hist[served_alpha] = (
                self._served_alpha_hist.get(served_alpha, 0) + 1
            )

    def snapshot(self) -> dict:
        """Render all counters, percentiles and the served-α histogram.

        The returned dict is JSON-serializable (histogram keys become
        strings) and detached from live state — mutating it cannot corrupt
        the stats, and the stats continuing to move cannot mutate it.
        """
        with self._lock:
            counters = dict(self._counters)
            latencies = list(self._latencies)
            hist = dict(self._served_alpha_hist)
            wait_total = self._wait_seconds_total
        requests = counters.get("requests", 0)
        hits = counters.get("result_cache_hits", 0)
        return {
            "counters": counters,
            "result_cache_hit_rate": (hits / requests) if requests else 0.0,
            "latency_seconds": {
                "samples": len(latencies),
                "p50": percentile(latencies, 0.50),
                "p95": percentile(latencies, 0.95),
                "p99": percentile(latencies, 0.99),
                "max": max(latencies) if latencies else None,
            },
            "queue_wait_seconds_total": wait_total,
            "served_alpha_histogram": {
                repr(alpha): count for alpha, count in sorted(hist.items())
            },
        }
