"""BEAS core: bounded plans, chase, chAT, executor, approximation schemes, framework."""

from .beas_agg import plan_aggregate
from .beas_ra import plan_ra, refine_bound_with_induced
from .beas_spc import plan_spc
from .bounded import alpha_exact, exact_plan, is_boundedly_evaluable
from .chase import ChaseResult, ChaseStep, Chaser, Mark, chase
from .chat import choose_access_templates
from .executor import BeasEvaluator, PlanExecutor, execute_plan
from .fetch_plan import atom_constants, fetch_plan_from_chase, needed_attributes
from .framework import Beas, QueryResult
from .lower_bound import distance_bounds, lower_bound, theoretical_floor
from .plan import Accessor, BoundedPlan, FetchPlan, FetchSource, FetchStep
from .planner import generate_plan

__all__ = [
    "Accessor",
    "Beas",
    "BeasEvaluator",
    "BoundedPlan",
    "ChaseResult",
    "ChaseStep",
    "Chaser",
    "FetchPlan",
    "FetchSource",
    "FetchStep",
    "Mark",
    "PlanExecutor",
    "QueryResult",
    "alpha_exact",
    "atom_constants",
    "chase",
    "choose_access_templates",
    "distance_bounds",
    "exact_plan",
    "execute_plan",
    "fetch_plan_from_chase",
    "generate_plan",
    "is_boundedly_evaluable",
    "lower_bound",
    "needed_attributes",
    "plan_aggregate",
    "plan_ra",
    "plan_spc",
    "refine_bound_with_induced",
    "theoretical_floor",
]
