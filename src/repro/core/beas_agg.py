"""BEAS_agg — resource-bounded approximation for RA_aggr queries (Section 7).

``gpBy(Q', X, agg(V))`` queries reuse the RA pipeline for the inner query
``Q'``; the group-by and the aggregate are executed over the approximate
answers to ``Q'`` by the executor.  Two aggregate-specific concerns:

* ``min`` / ``max`` — the bounds of Theorem 6 carry over unchanged
  (Corollary 7): the plan's ``η`` is the child's ``η``.
* ``sum`` / ``count`` / ``avg`` — the access-template indexes additionally
  return, for every representative tuple, the number of base tuples it
  stands for (see :class:`repro.access.index.TemplateIndex` and the
  duplicate counts of :class:`repro.access.index.ConstraintIndex`); the
  executor aggregates these weights so that counts and sums are estimated
  from the representatives rather than merely counted.
"""

from __future__ import annotations

from ..access.schema import AccessSchema
from ..algebra.ast import GroupBy, QueryNode
from ..errors import QueryError
from ..relational.schema import DatabaseSchema
from .plan import BoundedPlan
from .planner import generate_plan


def plan_aggregate(
    query: QueryNode,
    db_schema: DatabaseSchema,
    access_schema: AccessSchema,
    budget: int,
) -> BoundedPlan:
    """Generate an α-bounded plan and accuracy bound for an RA_aggr query."""
    if not query.has_aggregate():
        raise QueryError("BEAS_agg expects a query with a group-by / aggregate")
    if not isinstance(query, GroupBy):
        raise QueryError(
            "aggregates must be the outermost operator (the gpBy(Q', X, agg(V)) form)"
        )
    return generate_plan(query, db_schema, access_schema, budget)
