"""The chase over query tableaux under an access schema (Section 5).

A chasing sequence for an SPC query ``Q`` under an access schema ``A`` is a
sequence of annotated tableaux: each step applies an access constraint or an
access template (at level 0) to one tuple template, marking variables and
tuple templates as *exactly* or *approximately* covered:

* **variable marking** — if the ``X``-cells of the template's atom are
  constants or already-covered variables, the ``Y``-cells become covered:
  exactly when the accessor is a constraint and no ``X``-cell is approximate,
  approximately otherwise;
* **tuple marking** — an atom is exactly covered when all its cells are
  exact, approximately covered when all its cells are covered at all.

Under any schema subsuming the canonical ``A_t`` every chasing sequence
terminates with all atoms covered (Lemma 4): the whole-relation template
``R(∅ → attr(R), 2^k, d̄_k)`` is always applicable.

The chase also keeps a running *tariff* (worst-case tuples fetched, deduced
from the accessors' ``N`` bounds); when applying a constraint would blow the
budget ``B = α·|D|``, the step falls back to a level-0 template instead, so
the initial plan always fits the budget.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..access.schema import AccessConstraint, AccessSchema, TemplateFamily
from ..algebra.tableau import Constant, Tableau, Term, TupleTemplate, Variable
from ..errors import PlanError
from .plan import Accessor


class Mark(enum.Enum):
    """Coverage state of a variable or tuple template."""

    UNCOVERED = 0
    APPROX = 1
    EXACT = 2

    @property
    def covered(self) -> bool:
        return self is not Mark.UNCOVERED


@dataclass
class ChaseStep:
    """One step of a chasing sequence.

    Attributes:
        name: the fetch-step name this chase step will become (``T1``, ...).
        alias: the query atom (tuple template) the accessor was applied to.
        accessor: the constraint or level-0 template applied.
        input_terms: for every ``X``-attribute of the accessor, the tableau
            term supplying its value (a constant of ``Q`` or a covered
            variable).
        covered_variables: variables newly covered (or upgraded) by the step.
        exact: whether the produced ``Y`` values are exact (constraint with
            exact inputs).
        provides_frame: whether the executor should use this step's output as
            the atom's fetched relation (set for the template step that
            covers all remaining attributes of an atom).
    """

    name: str
    alias: str
    relation: str
    accessor: Accessor
    input_terms: Dict[str, Term]
    covered_variables: List[Variable]
    exact: bool
    provides_frame: bool = False

    def describe(self) -> str:
        inputs = ", ".join(f"{a}={t}" for a, t in self.input_terms.items()) or "∅"
        kind = "exact" if self.exact else "approx"
        return f"{self.name}: {self.accessor.describe()} on {self.alias} ({inputs}) [{kind}]"


@dataclass
class ChaseResult:
    """The outcome of chasing a tableau under an access schema."""

    steps: List[ChaseStep]
    variable_marks: Dict[Variable, Mark]
    atom_marks: Dict[str, Mark]
    variable_producer: Dict[Variable, Tuple[str, str, str]]  # step name, alias, attribute
    tariff: int

    def all_covered(self) -> bool:
        return all(mark.covered for mark in self.atom_marks.values())

    def all_exact(self) -> bool:
        return all(mark is Mark.EXACT for mark in self.atom_marks.values())

    def describe(self) -> str:
        lines = [step.describe() for step in self.steps]
        lines.append(f"tariff={self.tariff}")
        return "\n".join(lines)


class Chaser:
    """Runs the chase for one tableau under one access schema and budget."""

    def __init__(
        self,
        tableau: Tableau,
        access_schema: AccessSchema,
        budget: int,
        name_prefix: str = "T",
    ) -> None:
        self.tableau = tableau
        self.schema = access_schema
        self.budget = max(1, budget)
        self.name_prefix = name_prefix
        self._variable_marks: Dict[Variable, Mark] = {
            v: Mark.UNCOVERED for v in tableau.all_variables()
        }
        self._atom_marks: Dict[str, Mark] = {t.alias: Mark.UNCOVERED for t in tableau.templates}
        self._producer: Dict[Variable, Tuple[str, str, str]] = {}
        self._steps: List[ChaseStep] = []
        self._output_sizes: Dict[str, int] = {}
        self._tariff = 0
        self._counter = 0

    # -- term / mark helpers -----------------------------------------------------
    def _term_mark(self, term: Term) -> Mark:
        if isinstance(term, Constant):
            return Mark.EXACT
        return self._variable_marks.get(term, Mark.UNCOVERED)

    def _atom_cells_covered(self, template: TupleTemplate) -> Mark:
        marks = [self._term_mark(term) for term in template.cells.values()]
        if all(m is Mark.EXACT for m in marks):
            return Mark.EXACT
        if all(m.covered for m in marks):
            return Mark.APPROX
        return Mark.UNCOVERED

    def _refresh_atom_marks(self) -> None:
        for template in self.tableau.templates:
            mark = self._atom_cells_covered(template)
            if mark.value > self._atom_marks[template.alias].value:
                self._atom_marks[template.alias] = mark

    # -- applicability -------------------------------------------------------------
    def _x_terms(self, template: TupleTemplate, x: Sequence[str]) -> Optional[Dict[str, Term]]:
        """The atom's terms for the accessor's X attributes, or ``None`` if not applicable."""
        terms: Dict[str, Term] = {}
        for attribute in x:
            if attribute not in template.cells:
                return None
            term = template.cells[attribute]
            if not self._term_mark(term).covered:
                return None
            terms[attribute] = term
        return terms

    def _estimated_inputs(self, input_terms: Dict[str, Term]) -> int:
        """Upper bound on distinct X-values, from the producing steps' bounds."""
        bound = 1
        counted: Set[str] = set()
        for term in input_terms.values():
            if isinstance(term, Constant):
                continue
            producer = self._producer.get(term)
            if producer is None:
                # Covered variable without a recorded producer should not
                # happen; be conservative.
                return self.budget + 1
            step_name = producer[0]
            if step_name in counted:
                continue
            counted.add(step_name)
            bound *= max(1, self._output_sizes.get(step_name, 1))
        return bound

    # -- step application ---------------------------------------------------------
    def _next_name(self) -> str:
        self._counter += 1
        return f"{self.name_prefix}{self._counter}"

    def _apply(
        self,
        template: TupleTemplate,
        accessor: Accessor,
        input_terms: Dict[str, Term],
        provides_frame: bool,
    ) -> ChaseStep:
        inputs = self._estimated_inputs(input_terms)
        cost = inputs * accessor.n
        exact = accessor.is_constraint and all(
            self._term_mark(t) is Mark.EXACT for t in input_terms.values()
        )
        name = self._next_name()
        covered: List[Variable] = []
        target_mark = Mark.EXACT if exact else Mark.APPROX
        for attribute in accessor.y:
            term = template.cells.get(attribute)
            if not isinstance(term, Variable):
                continue
            current = self._variable_marks.get(term, Mark.UNCOVERED)
            if target_mark.value > current.value:
                self._variable_marks[term] = target_mark
                covered.append(term)
                self._producer[term] = (name, template.alias, attribute)
            elif term not in self._producer:
                self._producer[term] = (name, template.alias, attribute)

        step = ChaseStep(
            name=name,
            alias=template.alias,
            relation=template.relation,
            accessor=accessor,
            input_terms=dict(input_terms),
            covered_variables=covered,
            exact=exact,
            provides_frame=provides_frame,
        )
        self._steps.append(step)
        self._output_sizes[name] = inputs * accessor.n
        self._tariff += cost
        self._refresh_atom_marks()
        return step

    # -- candidate selection ---------------------------------------------------------
    def _useful_constraint(
        self, template: TupleTemplate, constraint: AccessConstraint
    ) -> Optional[Dict[str, Term]]:
        """X-terms if the constraint is applicable and covers something new."""
        input_terms = self._x_terms(template, constraint.spec.x)
        if input_terms is None:
            return None
        gains = False
        exact_inputs = all(self._term_mark(t) is Mark.EXACT for t in input_terms.values())
        for attribute in constraint.spec.y:
            term = template.cells.get(attribute)
            if not isinstance(term, Variable):
                continue
            mark = self._variable_marks.get(term, Mark.UNCOVERED)
            if mark is Mark.UNCOVERED or (mark is Mark.APPROX and exact_inputs):
                gains = True
                break
        return input_terms if gains else None

    def _uncovered_attributes(self, template: TupleTemplate) -> List[str]:
        return [
            attribute
            for attribute, term in template.cells.items()
            if isinstance(term, Variable) and not self._variable_marks[term].covered
        ]

    def _frame_family(
        self, template: TupleTemplate
    ) -> Optional[Tuple[TemplateFamily, Dict[str, Term]]]:
        """Pick the template family used to (approximately) cover an atom.

        Preference order: a family with non-empty, already-covered ``X`` whose
        ``X ∪ Y`` spans every used attribute of the atom (selective, e.g. the
        families derived from access constraints), then the whole-relation
        family of ``A_t``.
        """
        needed = set(template.cells)
        best: Optional[Tuple[TemplateFamily, Dict[str, Term]]] = None
        for family in self.schema.families_for(template.relation):
            if not set(family.x) | set(family.y) >= needed:
                continue
            input_terms = self._x_terms(template, family.x)
            if input_terms is None:
                continue
            if family.x:
                return family, input_terms
            if best is None:
                best = (family, input_terms)
        return best

    def _apply_frame_constraint(self, template: TupleTemplate) -> bool:
        """Cover a whole atom with one access constraint if possible.

        Used when an atom's cells are already covered through variables shared
        with other atoms (so no constraint was "useful" during phase 1), but
        the atom still needs its own fetch step so the executor can verify
        its tuples actually exist.  Budget permitting, an exact constraint
        whose ``X ∪ Y`` spans the atom is preferred over an approximate
        template.
        """
        needed = set(template.cells)
        for constraint in self.schema.constraints_for(template.relation):
            if not set(constraint.spec.x) | set(constraint.spec.y) >= needed:
                continue
            input_terms = self._x_terms(template, constraint.spec.x)
            if input_terms is None:
                continue
            accessor = Accessor(constraint=constraint)
            inputs = self._estimated_inputs(input_terms)
            if self._tariff + inputs * accessor.n > self.budget:
                continue
            self._apply(template, accessor, input_terms, provides_frame=True)
            return True
        return False

    # -- main loop ------------------------------------------------------------------
    def run(self) -> ChaseResult:
        # Phase 1: apply access constraints to propagate exact coverage as far
        # as the budget allows.
        progress = True
        while progress:
            progress = False
            for template in self.tableau.templates:
                for constraint in self.schema.constraints_for(template.relation):
                    input_terms = self._useful_constraint(template, constraint)
                    if input_terms is None:
                        continue
                    accessor = Accessor(constraint=constraint)
                    inputs = self._estimated_inputs(input_terms)
                    if self._tariff + inputs * accessor.n > self.budget:
                        continue
                    self._apply(template, accessor, input_terms, provides_frame=False)
                    progress = True

        # Phase 2: make sure every atom has fetch steps of its own spanning
        # all of its used attributes; otherwise apply a single accessor (an
        # exact constraint if one spans the atom, else a level-0 template)
        # that covers the whole atom and provides its fetched frame.
        for template in self.tableau.templates:
            covered_here = {
                attribute
                for step in self._steps
                if step.alias == template.alias
                for attribute in step.accessor.x + step.accessor.y
                if attribute in template.cells
            }
            if set(template.cells) <= covered_here:
                continue
            applied = self._apply_frame_constraint(template)
            if applied:
                continue
            choice = self._frame_family(template)
            if choice is None:
                raise PlanError(
                    f"no applicable access template covers atom {template.alias!r} "
                    f"({template.relation}); the access schema must subsume A_t"
                )
            family, input_terms = choice
            self._apply(
                template,
                Accessor(family=family, level=0),
                input_terms,
                provides_frame=True,
            )

        self._refresh_atom_marks()
        return ChaseResult(
            steps=self._steps,
            variable_marks=dict(self._variable_marks),
            atom_marks=dict(self._atom_marks),
            variable_producer=dict(self._producer),
            tariff=self._tariff,
        )


def chase(
    tableau: Tableau,
    access_schema: AccessSchema,
    budget: int,
    name_prefix: str = "T",
) -> ChaseResult:
    """Run the chase for ``tableau`` under ``access_schema`` with budget ``B``."""
    return Chaser(tableau, access_schema, budget, name_prefix=name_prefix).run()
