"""The BEAS framework (Section 4.2): offline index construction + online answering.

:class:`Beas` is the user-facing facade.  Offline, it builds (or accepts) an
access schema over the database — the canonical ``A_t`` plus any declared or
discovered constraints and templates — together with their indexes.  Online,
``answer(query, alpha)`` runs the appropriate approximation scheme
(BEAS_SPC / BEAS_RA / BEAS_agg), executes the α-bounded plan under an access
meter enforcing the budget, and returns the answers with the accuracy bound
``η`` and the access accounting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from ..access.builder import AccessSchemaBuilder, ConstraintSpec, FamilySpec
from ..access.schema import AccessSchema
from ..algebra.ast import QueryNode, query_fingerprint
from ..algebra.evaluator import evaluate_exact
from ..algebra.spc import classify
from ..algebra.sql import parse_query
from ..errors import QueryError
from ..relational.database import AccessMeter, Database
from ..relational.relation import Relation
from . import bounded
from .beas_agg import plan_aggregate
from .beas_ra import plan_ra, refine_bound_with_induced
from .beas_spc import plan_spc
from .executor import PlanExecutor
from .plan import BoundedPlan

QueryLike = Union[str, QueryNode]


@dataclass
class QueryResult:
    """The outcome of answering one query with bounded resources.

    Attributes:
        rows: the (approximate or exact) answers ``ξ_α(D)``.
        eta: the deterministic RC-accuracy lower bound returned with the plan
            (refined after execution for queries with set difference).
        alpha: the requested resource ratio.
        budget: the access budget ``⌊α·|D|⌋``.
        tuples_accessed: tuples actually read while executing the plan.
        exact: whether the plan fetches with zero resolution everywhere (the
            answers are exact answers ``Q(D)``).
        boundedly_evaluable: whether the plan uses access constraints only.
        plan: the bounded plan itself (for inspection / explain output).
        plan_seconds / execution_seconds: wall-clock timings of the two phases.
        query_class: ``"SPC"``, ``"RA"``, ``"agg(SPC)"`` or ``"agg(RA)"``.
        fingerprint: the canonical query fingerprint
            (:func:`repro.algebra.ast.query_fingerprint`) the serving layer
            keys result / plan caches on; ``alpha`` above is the α the answer
            was actually *served* at (admission control may have degraded it
            below the α the client requested — the serving envelope records
            both).
    """

    rows: Relation
    eta: float
    alpha: float
    budget: int
    tuples_accessed: int
    exact: bool
    boundedly_evaluable: bool
    plan: BoundedPlan
    plan_seconds: float
    execution_seconds: float
    query_class: str
    fingerprint: str = ""

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"QueryResult({len(self.rows)} rows, eta={self.eta:.3f}, "
            f"accessed={self.tuples_accessed}/{self.budget}, exact={self.exact})"
        )


class Beas:
    """Resource-bounded query answering over one database.

    Args:
        database: the instance ``D`` to query.
        access_schema: a prebuilt access schema; when omitted the canonical
            ``A_t`` plus any ``constraints`` / ``families`` passed here is
            built (offline phase, C1 in Fig. 2).
        constraints / families: declarative specs forwarded to
            :class:`~repro.access.builder.AccessSchemaBuilder`.
        max_level: cap on template levels materialised by the builder (useful
            to bound index-construction time on large relations).
    """

    def __init__(
        self,
        database: Database,
        access_schema: Optional[AccessSchema] = None,
        constraints: Sequence[ConstraintSpec] = (),
        families: Sequence[FamilySpec] = (),
        max_level: Optional[int] = None,
    ) -> None:
        self.database = database
        if access_schema is None:
            builder = AccessSchemaBuilder(database, max_level=max_level)
            access_schema = builder.build(constraints=constraints, families=families)
        self.access_schema = access_schema

    # -- helpers -----------------------------------------------------------------
    def _as_ast(self, query: QueryLike) -> QueryNode:
        if isinstance(query, str):
            return parse_query(query)
        if isinstance(query, QueryNode):
            return query
        raise QueryError(f"unsupported query object {type(query).__name__}")

    # -- planning -----------------------------------------------------------------
    def plan(self, query: QueryLike, alpha: float) -> BoundedPlan:
        """Generate the α-bounded plan for ``query`` without executing it."""
        return self._plan_ast(self._as_ast(query), self.database.budget_for(alpha))

    def _plan_ast(self, ast: QueryNode, budget: int) -> BoundedPlan:
        """Plan an already-normalized AST (the shared core of plan/answer).

        ``plan`` and ``answer`` both resolve the query to an AST exactly
        once and route here, so answering never pays the parse/normalize
        work twice — and the serving layer can plan against a budget it
        computed itself (for a degraded α) without re-deriving the AST.
        """
        if ast.has_aggregate():
            return plan_aggregate(ast, self.database.schema, self.access_schema, budget)
        if ast.is_spc():
            return plan_spc(ast, self.database.schema, self.access_schema, budget)
        return plan_ra(ast, self.database.schema, self.access_schema, budget)

    # -- answering -----------------------------------------------------------------
    def answer(
        self,
        query: QueryLike,
        alpha: float,
        enforce_budget: bool = True,
        plan: Optional[BoundedPlan] = None,
    ) -> QueryResult:
        """Answer ``query`` accessing at most ``α·|D|`` tuples (C3 + C4 in Fig. 2).

        ``plan`` optionally supplies a precomputed :class:`BoundedPlan` (the
        serving layer's plan cache reuses plans across requests); it must
        have been generated for the same query at the same budget ``⌊α·|D|⌋``
        — a mismatched budget raises :exc:`ValueError` rather than silently
        executing a plan whose tariff bound belongs to another α.
        """
        ast = self._as_ast(query)
        fingerprint = query_fingerprint(ast)
        budget = self.database.budget_for(alpha)

        start = time.perf_counter()
        if plan is None:
            plan = self._plan_ast(ast, budget)
        elif plan.budget != budget:
            raise ValueError(
                f"precomputed plan was generated for budget {plan.budget}, "
                f"but alpha={alpha} over the current database gives {budget}"
            )
        plan_seconds = time.perf_counter() - start

        if enforce_budget and plan.tariff > budget:
            # The chase must cover every query atom with at least one fetch
            # step, so for very tight budgets even the cheapest plan can carry
            # a tariff above ``α·|D|``.  Executing it would trip the meter
            # mid-fetch; instead refuse to touch ``D`` at all and return the
            # empty answer with the trivially sound bound ``η = 0``.
            return QueryResult(
                rows=Relation(ast.output_schema(self.database.schema)),
                eta=0.0,
                alpha=alpha,
                budget=budget,
                tuples_accessed=0,
                # The (unexecuted) empty answer is never exact, but bounded
                # evaluability is a property of the plan itself — report it.
                exact=False,
                boundedly_evaluable=plan.boundedly_evaluable,
                plan=plan,
                plan_seconds=plan_seconds,
                execution_seconds=0.0,
                query_class=classify(ast),
                fingerprint=fingerprint,
            )

        meter = AccessMeter(budget=budget, enforce=enforce_budget)
        start = time.perf_counter()
        executor = PlanExecutor(self.database, plan, meter)
        rows = executor.execute()
        eta = plan.eta
        if ast.has_difference():
            eta = refine_bound_with_induced(plan, executor, self.database, rows)
        execution_seconds = time.perf_counter() - start

        return QueryResult(
            rows=rows,
            eta=eta,
            alpha=alpha,
            budget=budget,
            tuples_accessed=meter.accessed,
            exact=plan.exact,
            boundedly_evaluable=plan.boundedly_evaluable,
            plan=plan,
            plan_seconds=plan_seconds,
            execution_seconds=execution_seconds,
            query_class=classify(ast),
            fingerprint=fingerprint,
        )

    def answer_exact(self, query: QueryLike, meter: Optional[AccessMeter] = None) -> Relation:
        """Ground-truth answers ``Q(D)`` by full (unbounded) evaluation."""
        return evaluate_exact(self._as_ast(query), self.database, meter)

    # -- analysis -----------------------------------------------------------------
    def alpha_exact(self, query: QueryLike) -> float:
        """Smallest resource ratio at which the plan for ``query`` is exact (Exp-3)."""
        return bounded.alpha_exact(self._as_ast(query), self.database, self.access_schema)

    def is_boundedly_evaluable(self, query: QueryLike) -> bool:
        """Whether ``query`` has a constraints-only (bounded-evaluation) plan."""
        return bounded.is_boundedly_evaluable(
            self._as_ast(query), self.database.schema, self.access_schema
        )

    def explain(self, query: QueryLike, alpha: float) -> str:
        """Human-readable description of the plan BEAS would run."""
        plan = self.plan(query, alpha)
        return plan.describe()
