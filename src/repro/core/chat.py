"""Procedure chAT — choosing access templates under a budget (Fig. 3).

Starting from a fetching plan whose template accessors sit at level 0, chAT
repeatedly upgrades the template whose next level yields the largest
improvement of the accuracy lower bound ``L`` while keeping the plan's tariff
within the budget ``B = α·|D|``.  Upgrading a step doubles its own ``N`` and
therefore also the input bounds of every step downstream of it, so the tariff
is re-derived from the whole plan after every candidate upgrade rather than
locally.

The procedure terminates when no template can be upgraded without exceeding
the budget (or all templates are at their maximum level), and returns the
lower bound ``η`` of the final plan.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..algebra.ast import QueryNode
from ..relational.schema import DatabaseSchema
from .lower_bound import lower_bound
from .plan import FetchPlan, FetchStep


def _upgraded_tariff(plan: FetchPlan, step: FetchStep) -> int:
    """Tariff of the plan if ``step`` were upgraded one level (non-mutating)."""
    step.accessor.level += 1
    try:
        return plan.tariff()
    finally:
        step.accessor.level -= 1


def _upgraded_bound(
    plan: FetchPlan, step: FetchStep, query: QueryNode, db_schema: DatabaseSchema
) -> float:
    """Lower bound of the plan if ``step`` were upgraded one level (non-mutating)."""
    step.accessor.level += 1
    try:
        return lower_bound(query, plan.resolution_map(), db_schema)
    finally:
        step.accessor.level -= 1


def choose_access_templates(
    plan: FetchPlan,
    query: QueryNode,
    budget: int,
    db_schema: DatabaseSchema,
) -> float:
    """Run chAT on ``plan`` in place and return the resulting bound ``η``.

    Greedy ascent: in each iteration pick the fetch step whose next template
    level gives the largest increase of ``L`` among those that keep
    ``tariff(ξ_F) <= budget``; ties are broken by the smaller resulting
    tariff (cheaper upgrades first) and then by plan order.
    """
    eta = lower_bound(query, plan.resolution_map(), db_schema)

    while True:
        best: Optional[Tuple[float, int, int]] = None  # (-gain, tariff, index)
        best_step: Optional[FetchStep] = None
        for index, step in enumerate(plan.steps):
            if not step.accessor.can_upgrade():
                continue
            new_tariff = _upgraded_tariff(plan, step)
            if new_tariff > budget:
                continue
            new_bound = _upgraded_bound(plan, step, query, db_schema)
            gain = new_bound - eta
            key = (-gain, new_tariff, index)
            if best is None or key < best:
                best = key
                best_step = step
        if best_step is None:
            break
        best_step.accessor.level += 1
        eta = lower_bound(query, plan.resolution_map(), db_schema)

    return eta
