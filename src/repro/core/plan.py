"""Bounded query plans (Section 2.2) in canonical form ``ξ_α = (ξ_F, ξ_E)``.

A bounded plan consists of

* a **fetching plan** ``ξ_F`` — a sequence of :class:`FetchStep`, each a
  ``fetch(X ∈ T, R, Y, ψ)`` operation that retrieves, for every ``X``-value
  produced by earlier steps (or constants from the query), at most ``N``
  representative tuples through the index of an access constraint or
  template; and
* an **evaluation plan** ``ξ_E`` — the query's own relational operators,
  executed over the fetched data with selections relaxed by the resolutions
  of the templates used (implemented by the executor).

The *tariff* of a fetching plan is the worst-case number of tuples it can
access, deduced purely from the ``N`` constants of the accessors used — no
data access is needed to compute it, which is what lets BEAS promise
``tariff(ξ_F) <= α·|D|`` before touching ``D``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..access.schema import AccessConstraint, TemplateFamily
from ..errors import PlanError


@dataclass
class Accessor:
    """The access constraint or (levelled) access template a fetch step uses.

    Exactly one of ``constraint`` / ``family`` is set.  For families the
    current ``level`` selects the template ``R(X → Y, 2^level, d̄_level)``;
    chAT upgrades the level to trade budget for resolution.
    """

    constraint: Optional[AccessConstraint] = None
    family: Optional[TemplateFamily] = None
    level: int = 0

    def __post_init__(self) -> None:
        if (self.constraint is None) == (self.family is None):
            raise PlanError("an accessor must wrap exactly one constraint or template family")

    @property
    def is_constraint(self) -> bool:
        return self.constraint is not None

    @property
    def relation(self) -> str:
        return self.constraint.relation if self.constraint else self.family.relation

    @property
    def x(self) -> Tuple[str, ...]:
        return self.constraint.spec.x if self.constraint else self.family.x

    @property
    def y(self) -> Tuple[str, ...]:
        return self.constraint.spec.y if self.constraint else self.family.y

    @property
    def n(self) -> int:
        """The cardinality bound ``N`` of the accessor at its current level."""
        if self.constraint:
            return self.constraint.spec.n
        return 2 ** min(self.level, self.family.max_level)

    @property
    def max_level(self) -> int:
        return 0 if self.constraint else self.family.max_level

    def can_upgrade(self) -> bool:
        """Whether a higher-resolution template level is available."""
        return self.family is not None and self.level < self.family.max_level

    def resolution_of(self, attribute: str) -> float:
        """Resolution on one fetched attribute (0 for constraints / X attrs)."""
        if self.constraint:
            return 0.0
        if attribute in self.family.x:
            return 0.0
        return float(self.family.resolution(self.level).get(attribute, 0.0))

    def resolution(self) -> Dict[str, float]:
        """Resolutions of all Y attributes."""
        if self.constraint:
            return {a: 0.0 for a in self.y}
        return dict(self.family.resolution(self.level))

    @property
    def is_exact(self) -> bool:
        """Whether this accessor fetches values with zero error."""
        if self.constraint:
            return True
        return all(v == 0.0 for v in self.family.resolution(self.level).values())

    def fetch(self, x_value: Sequence[object], meter=None):
        """Fetch the sample for one ``X``-value (delegates to the index)."""
        if self.constraint:
            return self.constraint.fetch(x_value, meter)
        return self.family.fetch(x_value, self.level, meter)

    def describe(self) -> str:
        if self.constraint:
            return self.constraint.spec.describe()
        return self.family.spec_at(self.level).describe()

    def copy(self) -> "Accessor":
        return Accessor(constraint=self.constraint, family=self.family, level=self.level)


@dataclass(frozen=True)
class FetchSource:
    """Where one ``X``-attribute value of a fetch step comes from.

    Either a constant from the query (``kind="const"``) or a column of an
    earlier fetch step's output (``kind="column"``).
    """

    attribute: str
    kind: str
    value: object = None
    step: Optional[str] = None
    column: Optional[str] = None

    @classmethod
    def constant(cls, attribute: str, value: object) -> "FetchSource":
        return cls(attribute=attribute, kind="const", value=value)

    @classmethod
    def from_step(cls, attribute: str, step: str, column: str) -> "FetchSource":
        return cls(attribute=attribute, kind="column", step=step, column=column)

    def __str__(self) -> str:  # pragma: no cover - debug helper
        if self.kind == "const":
            return f"{self.attribute}={self.value!r}"
        return f"{self.attribute}∈{self.step}.{self.column}"


@dataclass
class FetchStep:
    """One ``fetch(X ∈ T, R, Y, ψ)`` operation of a fetching plan."""

    name: str
    alias: str
    relation: str
    accessor: Accessor
    sources: Tuple[FetchSource, ...]

    @property
    def output_columns(self) -> Tuple[str, ...]:
        """Qualified columns of the step's result table: X then Y attributes."""
        return tuple(f"{self.alias}.{a}" for a in self.accessor.x + self.accessor.y)

    def describe(self) -> str:
        sources = ", ".join(str(s) for s in self.sources) or "∅"
        return f"{self.name} = fetch({sources}; {self.accessor.describe()}) -> atom {self.alias}"

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"FetchStep({self.describe()})"


@dataclass
class FetchPlan:
    """An ordered sequence of fetch steps (the fetching plan ``ξ_F``)."""

    steps: List[FetchStep] = field(default_factory=list)

    def __iter__(self):
        return iter(self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def step(self, name: str) -> FetchStep:
        for step in self.steps:
            if step.name == name:
                return step
        raise PlanError(f"no fetch step named {name!r}")

    def steps_for(self, alias: str) -> List[FetchStep]:
        """All steps fetching data for one query atom."""
        return [step for step in self.steps if step.alias == alias]

    def aliases(self) -> List[str]:
        seen: Dict[str, None] = {}
        for step in self.steps:
            seen.setdefault(step.alias, None)
        return list(seen)

    # -- tariff --------------------------------------------------------------
    def estimated_inputs(self, step: FetchStep, output_sizes: Mapping[str, int]) -> int:
        """Upper bound on the number of distinct ``X``-values fed to ``step``.

        Constants contribute a factor of 1; column sources contribute the
        (already bounded) output size of the producing step.  Sources drawn
        from the same producing step are counted once — their combinations
        cannot exceed that step's row bound.
        """
        bound = 1
        counted_steps = set()
        for source in step.sources:
            if source.kind == "const":
                continue
            if source.step in counted_steps:
                continue
            counted_steps.add(source.step)
            bound *= max(1, output_sizes.get(source.step, 1))
        return bound

    def output_size_bounds(self) -> Dict[str, int]:
        """Upper bound of every step's output size, in plan order."""
        sizes: Dict[str, int] = {}
        for step in self.steps:
            inputs = self.estimated_inputs(step, sizes)
            sizes[step.name] = inputs * step.accessor.n
        return sizes

    def tariff(self) -> int:
        """Worst-case number of tuples the plan can access (Section 5)."""
        sizes: Dict[str, int] = {}
        total = 0
        for step in self.steps:
            inputs = self.estimated_inputs(step, sizes)
            fetched = inputs * step.accessor.n
            sizes[step.name] = fetched
            total += fetched
        return total

    def resolution_map(self) -> Dict[str, float]:
        """Per qualified attribute, the worst resolution it was fetched with.

        Attributes fetched by several steps keep the worst (largest) value so
        the derived relaxations and accuracy bounds stay sound.
        """
        resolutions: Dict[str, float] = {}
        for step in self.steps:
            for attribute in step.accessor.x + step.accessor.y:
                qualified = f"{step.alias}.{attribute}"
                value = step.accessor.resolution_of(attribute)
                if qualified not in resolutions or value > resolutions[qualified]:
                    resolutions[qualified] = value
        return resolutions

    def is_exact(self) -> bool:
        """Whether every fetch uses an exact accessor (resolution 0 everywhere)."""
        return all(step.accessor.is_exact for step in self.steps)

    def uses_constraints_only(self) -> bool:
        """Whether the plan is a *bounded-evaluation* plan (constraints only)."""
        return all(step.accessor.is_constraint for step in self.steps)

    def describe(self) -> str:
        return "\n".join(step.describe() for step in self.steps)

    def copy(self) -> "FetchPlan":
        steps = [
            FetchStep(
                name=s.name,
                alias=s.alias,
                relation=s.relation,
                accessor=s.accessor.copy(),
                sources=s.sources,
            )
            for s in self.steps
        ]
        return FetchPlan(steps=steps)


@dataclass
class BoundedPlan:
    """A complete α-bounded plan: fetching plan + metadata for evaluation.

    Attributes:
        query: the query AST the plan answers.
        fetch_plan: the fetching plan ``ξ_F`` (already budget-constrained).
        budget: the access budget ``⌊α·|D|⌋`` the plan was generated for.
        eta: the deterministic accuracy lower bound deduced for the plan.
        constants: tableau constants per atom attribute, used to reconstruct
            attribute values the fetch steps did not need to retrieve.
        needed_attributes: per atom, the attributes the query uses (the
            evaluation plan restricts each atom to these).
    """

    query: object
    fetch_plan: FetchPlan
    budget: int
    eta: float
    constants: Dict[str, Dict[str, object]] = field(default_factory=dict)
    needed_attributes: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def tariff(self) -> int:
        return self.fetch_plan.tariff()

    @property
    def exact(self) -> bool:
        return self.fetch_plan.is_exact()

    @property
    def boundedly_evaluable(self) -> bool:
        return self.fetch_plan.uses_constraints_only()

    def resolution_map(self) -> Dict[str, float]:
        return self.fetch_plan.resolution_map()

    def describe(self) -> str:
        lines = [
            f"BoundedPlan(budget={self.budget}, tariff={self.tariff}, eta={self.eta:.4f}, "
            f"exact={self.exact})",
            self.fetch_plan.describe(),
        ]
        return "\n".join(lines)
