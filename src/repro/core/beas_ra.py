"""BEAS_RA — the resource-bounded approximation scheme for RA queries (Section 6).

RA adds union and set difference to SPC.  Plan generation builds fetching
plans for every maximal SPC sub-query (shared pipeline in
:mod:`repro.core.planner`); the executor enforces set-difference semantics
with the maximal-induced-query guard (Theorem 6(5)).

The extra step specific to BEAS_RA (Fig. 5, lines 4–7) is the *post-execution*
refinement of the accuracy bound: the lower-bound function ``L`` alone cannot
account for approximate ``Q1`` answers that the set-difference guard removed,
so the algorithm also executes the maximal induced query ``Q̂`` over the same
fetched data and corrects the coverage bound by the empirical distance ``d'``
between the two answer sets:

    η' = 1 / (1 + max(d_rel, d' + d̂_cov)).

``Q(D) ⊆ Q̂(D)`` is covered by ``ξ̂_α(D)`` within ``d̂_cov``, and ``ξ̂_α(D)``
is covered by ``ξ_α(D)`` within ``d'``, so by the triangle inequality
``Q(D)`` is covered by ``ξ_α(D)`` within ``d' + d̂_cov``.
"""

from __future__ import annotations

from ..access.schema import AccessSchema
from ..algebra.ast import QueryNode
from ..algebra.spc import maximal_induced_query
from ..errors import QueryError
from ..relational.database import Database
from ..relational.distance import INFINITY
from ..relational.relation import Relation
from ..relational.schema import DatabaseSchema
from .executor import PlanExecutor
from .lower_bound import distance_bounds
from .plan import BoundedPlan
from .planner import generate_plan


def plan_ra(
    query: QueryNode,
    db_schema: DatabaseSchema,
    access_schema: AccessSchema,
    budget: int,
) -> BoundedPlan:
    """Generate an α-bounded plan and (pre-execution) bound for an RA query."""
    if query.has_aggregate():
        raise QueryError("BEAS_RA does not handle aggregates; use BEAS_agg")
    return generate_plan(query, db_schema, access_schema, budget)


def refine_bound_with_induced(
    plan: BoundedPlan,
    executor: PlanExecutor,
    database: Database,
    answers: Relation,
) -> float:
    """Compute the corrected bound ``η'`` after executing the plan (Fig. 5, lines 4–7).

    Args:
        plan: the executed bounded plan.
        executor: the executor that already fetched the plan's data (reused to
            evaluate the maximal induced query without extra data access).
        database: the queried database (schema only; no tuples are read).
        answers: the approximate answers ``S = ξ_α(D)``.

    Returns the refined bound; queries without set difference keep ``plan.eta``.
    """
    query: QueryNode = plan.query
    if not query.has_difference():
        return plan.eta

    induced = maximal_induced_query(query)
    induced_answers = executor.evaluate(induced)

    d_rel, d_cov = distance_bounds(query, plan.resolution_map(), database.schema)
    _, induced_cov = distance_bounds(induced, plan.resolution_map(), database.schema)

    schema = query.output_schema(database.schema)
    distances = [attribute.distance for attribute in schema.attributes]

    if len(induced_answers) == 0:
        d_prime = 0.0
    elif len(answers) == 0:
        d_prime = INFINITY
    else:
        d_prime = 0.0
        answer_rows = list(answers.rows)
        for induced_row in induced_answers:
            best = INFINITY
            for answer_row in answer_rows:
                worst_attr = 0.0
                for a, b, dist in zip(answer_row, induced_row, distances):
                    value = dist(a, b)
                    if value > worst_attr:
                        worst_attr = value
                    if worst_attr >= best:
                        break
                if worst_attr < best:
                    best = worst_attr
                if best == 0.0:
                    break
            if best > d_prime:
                d_prime = best
            if d_prime == INFINITY:
                break

    if d_prime == INFINITY:
        return 0.0
    return 1.0 / (1.0 + max(d_rel, d_prime + induced_cov))
