"""BEAS_SPC — the resource-bounded approximation scheme for SPC queries (Section 5).

Given an SPC query ``Q``, an access schema ``A ⊇ A_t`` and a budget
``B = α·|D|``, :func:`plan_spc` generates an α-bounded plan ``ξ_α = (ξ_F, ξ_E)``
and a deterministic accuracy lower bound ``η`` such that (Theorem 5):

1. ``F_rel(ξ_α(D), Q, D) ≥ η`` and ``F_cov(ξ_α(D), Q, D) ≥ η``;
2. ``η`` is never below the query-independent floor
   ``1/(1 + max_ψ d̄_{ψ,k*})`` (see :func:`repro.core.lower_bound.theoretical_floor`);
3. larger budgets never yield smaller ``η`` (monotonicity in α).

Plan generation is the pipeline of :mod:`repro.core.planner`: tableau →
chase → fetching plan → chAT, all without accessing ``D``.
"""

from __future__ import annotations

from ..access.schema import AccessSchema
from ..algebra.ast import QueryNode
from ..errors import QueryError
from ..relational.schema import DatabaseSchema
from .plan import BoundedPlan
from .planner import generate_plan


def plan_spc(
    query: QueryNode,
    db_schema: DatabaseSchema,
    access_schema: AccessSchema,
    budget: int,
) -> BoundedPlan:
    """Generate an α-bounded plan and accuracy bound for an SPC query."""
    if not query.is_spc():
        raise QueryError(
            "BEAS_SPC only accepts SPC queries (σ, π, ×, ρ over base relations); "
            "use BEAS_RA or BEAS_agg for queries with ∪, − or group-by"
        )
    return generate_plan(query, db_schema, access_schema, budget)
