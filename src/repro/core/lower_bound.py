"""The accuracy lower-bound function ``L`` (Section 5, chAT).

Given a query and the per-attribute resolutions of the accessors its fetching
plan uses, ``L(ξ) = 1 / (1 + max(d_rel, d_cov))`` where ``d_rel`` and
``d_cov`` are upper bounds on the relevance and coverage distances of the
plan's answers, derived inductively over the query structure:

* base relation / scan — no error beyond the resolutions of the fetched
  attributes;
* ``σ_{R[A] op c}`` / ``σ_{R[A] op R[B]}`` — the relevance bound absorbs the
  resolution of the selection attributes (the relaxed condition may admit
  values off by that much);
* ``π``, ``×`` — combine children; coverage is bounded by the worst
  resolution among attributes visible in the output;
* ``Q1 ∪ Q2`` — worst of the two sides;
* ``Q1 − Q2`` — bounds of ``Q1`` (the executed guard never *adds* error to
  the surviving answers; the extra coverage term ``d' + d̂_cov`` of BEAS_RA is
  applied after execution, Section 6);
* ``gpBy(Q', X, min/max(V))`` — inherits ``Q'``'s bounds; for
  ``sum``/``count``/``avg`` the aggregate-value error cannot be bounded by
  resolutions alone, so the bound covers the group-key attributes (the
  paper's Corollary 7 likewise only carries the guarantees of Theorem 6 over
  to ``min``/``max``).

Because every template upgrade lowers some resolution, ``L`` is monotone in
the chosen levels — exactly the property chAT's greedy ascent relies on — and
monotone in α (Theorems 5(3) and 6(4)).
"""

from __future__ import annotations

from typing import Mapping, Set, Tuple

from ..algebra.ast import (
    Difference,
    GroupBy,
    Product,
    Project,
    QueryNode,
    Rename,
    Scan,
    Select,
    Union,
    resolve_attribute,
)
from ..relational.schema import DatabaseSchema


def _attribute_resolution(qualified: str, resolutions: Mapping[str, float]) -> float:
    return float(resolutions.get(qualified, 0.0))


def _collect_selection_attributes(node: QueryNode, db_schema: DatabaseSchema) -> Set[str]:
    """Qualified attributes used in selection conditions anywhere in the query."""
    attributes: Set[str] = set()
    for current in node.walk():
        if isinstance(current, Select):
            schema = current.child.output_schema(db_schema)
            for ref in current.condition.attributes():
                try:
                    attributes.add(resolve_attribute(schema, ref))
                except Exception:
                    attributes.add(ref.qualified)
    return attributes


def _collect_output_attributes(node: QueryNode, db_schema: DatabaseSchema) -> Set[str]:
    """Qualified attributes visible in the query output (before aggregates)."""
    if isinstance(node, GroupBy):
        child_schema = node.child.output_schema(db_schema)
        names = {resolve_attribute(child_schema, ref) for ref in node.group_columns}
        names.add(resolve_attribute(child_schema, node.agg_column))
        return names
    try:
        return set(node.output_schema(db_schema).attribute_names)
    except Exception:
        return set()


def distance_bounds(
    node: QueryNode,
    resolutions: Mapping[str, float],
    db_schema: DatabaseSchema,
) -> Tuple[float, float]:
    """Upper bounds ``(d_rel, d_cov)`` for a query under given fetch resolutions."""
    if isinstance(node, Union):
        left = distance_bounds(node.left, resolutions, db_schema)
        right = distance_bounds(node.right, resolutions, db_schema)
        return max(left[0], right[0]), max(left[1], right[1])
    if isinstance(node, Difference):
        # The paper inherits the bounds of the positive side and corrects the
        # coverage after execution (BEAS_RA).  We additionally fold in the
        # negated side's bounds: the set-difference guard removes answers
        # within the *negated* side's fetch resolution, so a coarse negated
        # side hurts coverage — folding it in keeps the bound sound (it only
        # gets more conservative) and lets chAT spend budget on the negated
        # side where that pays off.
        left = distance_bounds(node.left, resolutions, db_schema)
        right = distance_bounds(node.right, resolutions, db_schema)
        return max(left[0], right[0]), max(left[1], right[1])
    if isinstance(node, GroupBy):
        # Group-by answers expose the group-key attributes plus one aggregate
        # value.  The bound tracks the resolutions of the group keys, the
        # child's selection attributes and — except for count, which ignores
        # the aggregated attribute's values — the aggregate column.
        child_schema = node.child.output_schema(db_schema)
        selection_attrs = _collect_selection_attributes(node.child, db_schema)
        output_attrs = {resolve_attribute(child_schema, ref) for ref in node.group_columns}
        from ..algebra.aggregates import AggregateFunction

        if node.aggregate is not AggregateFunction.COUNT:
            output_attrs.add(resolve_attribute(child_schema, node.agg_column))
        d_rel = 0.0
        d_cov = 0.0
        for qualified in selection_attrs | output_attrs:
            value = _attribute_resolution(qualified, resolutions)
            d_rel = max(d_rel, value)
            d_cov = max(d_cov, value)
        return d_rel, d_cov
    if isinstance(node, (Project, Rename, Select, Product, Scan)):
        selection_attrs = _collect_selection_attributes(node, db_schema)
        output_attrs = _collect_output_attributes(node, db_schema)
        d_rel = 0.0
        for qualified in selection_attrs | output_attrs:
            d_rel = max(d_rel, _attribute_resolution(qualified, resolutions))
        d_cov = 0.0
        for qualified in output_attrs | selection_attrs:
            d_cov = max(d_cov, _attribute_resolution(qualified, resolutions))
        return d_rel, d_cov
    # Unknown node: fall back to the worst resolution anywhere.
    worst = max(resolutions.values(), default=0.0)
    return worst, worst


def lower_bound(
    node: QueryNode,
    resolutions: Mapping[str, float],
    db_schema: DatabaseSchema,
) -> float:
    """``L(ξ) = 1 / (1 + max(d_rel, d_cov))``."""
    d_rel, d_cov = distance_bounds(node, resolutions, db_schema)
    return 1.0 / (1.0 + max(d_rel, d_cov))


def theoretical_floor(
    node: QueryNode,
    access_schema,
    budget: int,
) -> float:
    """The query-independent floor of Theorem 5(2): ``1/(1 + max_ψ d̄_{ψ,k*})``.

    ``k* = ⌊log2(B / ||Q||)⌋ - 1`` — the level every whole-relation template
    could afford if the budget were split evenly across the query's relation
    atoms.  The bound returned by BEAS is always at least this floor.
    """
    import math

    relation_count = max(1, node.relation_count())
    per_atom = max(1, budget // relation_count)
    k_star = max(0, int(math.floor(math.log2(per_atom))) - 1)
    worst = 0.0
    for family in access_schema.families:
        level = min(k_star, family.max_level)
        res = family.resolution(level)
        worst = max(worst, max(res.values(), default=0.0))
    return 1.0 / (1.0 + worst)
