"""Deriving fetching plans ``ξ_F`` from chasing sequences (Section 5, step 1).

Each chase step maps one-to-one onto a :class:`~repro.core.plan.FetchStep`:
the accessor is carried over, and the accessor's ``X``-attributes become
fetch *sources* — constants of the query, or columns of the earlier step
that covered the shared variable (recorded by the chase as the variable's
producer).
"""

from __future__ import annotations

from typing import Dict, List

from ..algebra.tableau import Constant, Tableau, Variable
from ..errors import PlanError
from .chase import ChaseResult, ChaseStep
from .plan import FetchPlan, FetchSource, FetchStep


def fetch_plan_from_chase(tableau: Tableau, result: ChaseResult) -> FetchPlan:
    """Translate a chasing sequence into a fetching plan."""
    steps: List[FetchStep] = []
    for chase_step in result.steps:
        sources = tuple(
            _source_for(chase_step, attribute, term, result)
            for attribute, term in chase_step.input_terms.items()
        )
        steps.append(
            FetchStep(
                name=chase_step.name,
                alias=chase_step.alias,
                relation=chase_step.relation,
                accessor=chase_step.accessor,
                sources=sources,
            )
        )
    return FetchPlan(steps=steps)


def _source_for(chase_step: ChaseStep, attribute: str, term, result: ChaseResult) -> FetchSource:
    if isinstance(term, Constant):
        return FetchSource.constant(attribute, term.value)
    if isinstance(term, Variable):
        producer = result.variable_producer.get(term)
        if producer is None:
            raise PlanError(
                f"fetch step {chase_step.name} needs variable {term} for attribute "
                f"{attribute!r} but no earlier step produced it"
            )
        producer_step, producer_alias, producer_attribute = producer
        if producer_step == chase_step.name:
            raise PlanError(
                f"fetch step {chase_step.name} would read variable {term} from itself"
            )
        return FetchSource.from_step(
            attribute, producer_step, f"{producer_alias}.{producer_attribute}"
        )
    raise PlanError(f"unsupported tableau term {term!r}")


def atom_constants(tableau: Tableau) -> Dict[str, Dict[str, object]]:
    """Constant cells per atom, used to re-materialise unfetched attributes."""
    constants: Dict[str, Dict[str, object]] = {}
    for template in tableau.templates:
        values = {
            attribute: term.value
            for attribute, term in template.cells.items()
            if isinstance(term, Constant)
        }
        if values:
            constants[template.alias] = values
    return constants


def needed_attributes(tableau: Tableau) -> Dict[str, List[str]]:
    """Per atom, the attributes the query actually uses (its tableau cells)."""
    return {template.alias: list(template.cells) for template in tableau.templates}
