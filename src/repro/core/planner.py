"""Shared plan-generation pipeline used by BEAS_SPC / BEAS_RA / BEAS_agg.

All three approximation schemes follow the same two steps (Sections 5–7):

1. For every maximal SPC sub-query, build its tableau, chase it under the
   access schema within the budget, and derive the fetching plan; the plans
   are concatenated (with distinct step names) into the fetching plan of the
   whole query.
2. Run chAT to upgrade the plan's access templates greedily while keeping the
   tariff within ``B = α·|D|``, and derive the accuracy lower bound ``η``
   from the resolutions of the accessors finally chosen.

The result is a :class:`~repro.core.plan.BoundedPlan` holding everything the
executor needs.  Plan generation never touches the database instance — it
only reads the access schema's constants and resolutions — mirroring the
paper's requirement that ``Γ_A`` computes ``ξ_α`` without accessing ``D``.
"""

from __future__ import annotations

from typing import Dict, List

from ..access.schema import AccessSchema
from ..algebra.ast import GroupBy, Project, QueryNode, Select
from ..algebra.predicates import AttrRef
from ..algebra.spc import max_spc_subqueries, to_spc
from ..algebra.tableau import build_tableau
from ..errors import PlanError, QueryError
from ..relational.schema import DatabaseSchema
from .chase import Chaser
from .chat import choose_access_templates
from .fetch_plan import atom_constants, fetch_plan_from_chase, needed_attributes
from .plan import BoundedPlan, FetchPlan


def _referenced_attributes(query: QueryNode) -> List[AttrRef]:
    """Every attribute reference appearing anywhere in the query.

    Used to make sure each SPC sub-query's fetching plan also covers
    attributes that only *outer* operators need — e.g. the aggregate column
    of a group-by sitting above the SPC block, or the projection columns of a
    query whose top-level operator is a union or difference.
    """
    refs: List[AttrRef] = []
    for node in query.walk():
        if isinstance(node, Select):
            refs.extend(node.condition.attributes())
        elif isinstance(node, Project):
            refs.extend(node.columns)
        elif isinstance(node, GroupBy):
            refs.extend(node.group_columns)
            refs.append(node.agg_column)
    return refs


def generate_plan(
    query: QueryNode,
    db_schema: DatabaseSchema,
    access_schema: AccessSchema,
    budget: int,
) -> BoundedPlan:
    """Generate an α-bounded plan (fetching plan + bound η) for any RA_aggr query."""
    if budget <= 0:
        raise PlanError(f"budget must be positive, got {budget}")

    subqueries = max_spc_subqueries(query)
    if not subqueries:
        raise QueryError("query contains no SPC sub-queries to plan for")

    combined = FetchPlan()
    constants: Dict[str, Dict[str, object]] = {}
    needed: Dict[str, List[str]] = {}
    remaining = budget

    global_refs = _referenced_attributes(query)

    for index, subquery in enumerate(subqueries, start=1):
        spc = to_spc(subquery)
        # Extend the sub-query's output with any attribute the full query
        # references on this sub-query's atoms, so the chase covers (and the
        # fetching plan retrieves) everything downstream operators touch.
        extra = [
            ref
            for ref in global_refs
            if ref.alias in spc.atoms
            and not any(
                existing.alias == ref.alias and existing.attribute == ref.attribute
                for existing in spc.output
            )
        ]
        if extra:
            deduped: List[AttrRef] = list(spc.output)
            for ref in extra:
                if not any(
                    r.alias == ref.alias and r.attribute == ref.attribute for r in deduped
                ):
                    deduped.append(ref)
            spc.output = tuple(deduped)
        tableau = build_tableau(spc, db_schema)
        prefix = "T" if len(subqueries) == 1 else f"S{index}_T"
        chaser = Chaser(tableau, access_schema, max(1, remaining), name_prefix=prefix)
        result = chaser.run()
        sub_plan = fetch_plan_from_chase(tableau, result)
        combined.steps.extend(sub_plan.steps)
        remaining = max(1, budget - combined.tariff())

        for alias, values in atom_constants(tableau).items():
            constants.setdefault(alias, {}).update(values)
        for alias, attributes in needed_attributes(tableau).items():
            existing = needed.setdefault(alias, [])
            for attribute in attributes:
                if attribute not in existing:
                    existing.append(attribute)

    eta = choose_access_templates(combined, query, budget, db_schema)

    return BoundedPlan(
        query=query,
        fetch_plan=combined,
        budget=budget,
        eta=eta,
        constants=constants,
        needed_attributes=needed,
    )
