"""Bounded evaluability and exact-answer resource ratios.

A query is *boundedly evaluable* under an access schema ``A`` (the setting of
the earlier bounded-evaluation line of work the paper builds on) when it has
a query plan using access constraints only — such a plan computes exact
answers and accesses an amount of data decided by ``A`` and ``Q``,
independent of ``|D|``.

BEAS subsumes this: when the chase can cover every atom exactly with
constraints within the budget, the generated plan is a bounded-evaluation
plan and BEAS returns exact answers.  This module also computes, for Exp-3
(Fig 6(j)), the smallest resource ratio ``α_exact`` at which the plan for a
query becomes exact: the tariff of the plan with every template driven to its
exact level, divided by ``|D|``.
"""

from __future__ import annotations

from typing import Optional

from ..access.schema import AccessSchema
from ..algebra.ast import QueryNode
from ..relational.database import Database
from ..relational.schema import DatabaseSchema
from .plan import BoundedPlan
from .planner import generate_plan


def is_boundedly_evaluable(
    query: QueryNode,
    db_schema: DatabaseSchema,
    access_schema: AccessSchema,
    budget: Optional[int] = None,
) -> bool:
    """Whether the generated plan for ``query`` uses access constraints only.

    ``budget`` defaults to an effectively unconstrained value so the check
    reflects the query/schema structure rather than a particular α.
    """
    budget = budget if budget is not None else 10**9
    plan = generate_plan(query, db_schema, access_schema, budget)
    return plan.boundedly_evaluable


def exact_plan(
    query: QueryNode,
    db_schema: DatabaseSchema,
    access_schema: AccessSchema,
    budget: Optional[int] = None,
) -> BoundedPlan:
    """The plan for ``query`` with every template accessor forced to its exact level.

    The resulting plan fetches values with resolution 0 everywhere, i.e. it
    computes exact answers; its tariff is the cost of exactness.
    """
    budget = budget if budget is not None else 10**12
    plan = generate_plan(query, db_schema, access_schema, budget)
    for step in plan.fetch_plan:
        if step.accessor.family is not None:
            step.accessor.level = step.accessor.family.max_level
    plan.eta = 1.0
    return plan


def alpha_exact(
    query: QueryNode,
    database: Database,
    access_schema: AccessSchema,
) -> float:
    """The smallest resource ratio at which BEAS answers ``query`` exactly.

    Computed as ``tariff(exact plan) / |D|``; boundedly evaluable queries give
    very small ratios that shrink as ``|D|`` grows (the tariff is independent
    of ``|D|``), which is the trend Fig 6(j) reports.
    """
    plan = exact_plan(query, database.schema, access_schema)
    total = max(1, database.total_tuples)
    # The tariff is a worst-case product of cardinality bounds and can exceed
    # |D|; a full scan always yields exact answers at α = 1, so cap there.
    return min(1.0, plan.tariff / total)
