"""Execution of bounded plans against a database (the ``ξ_E`` side of BEAS).

The :class:`PlanExecutor` runs a :class:`~repro.core.plan.BoundedPlan` in two
stages:

1. **Fetch** — execute the fetching plan step by step.  Each step derives its
   ``X``-values from constants and from the output columns of earlier steps,
   then fetches through the step's access-constraint or access-template index,
   charging every retrieved tuple to the access meter (so α-boundedness is
   enforced and measurable, not merely promised).
2. **Evaluate** — run the query's own operators over the fetched per-atom
   relations with selections *relaxed* by the resolutions of the templates
   used (Section 5), set difference guarded through the maximal induced query
   and a distance filter so that no tuple of ``Q2(D)`` can survive
   (Section 6, Theorem 6(5)), and aggregates computed over representative
   weights (Section 7).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from ..algebra.ast import Difference, QueryNode
from ..algebra.evaluator import Evaluator, Frame, MappingProvider
from ..algebra.spc import maximal_induced_query
from ..errors import PlanError
from ..relational.database import AccessMeter, Database
from ..relational.kernels import RadiusMatcher
from ..relational.relation import Relation, Row
from ..relational.schema import Attribute, RelationSchema
from ..relational.store import Store, gather_columns
from .plan import BoundedPlan, FetchStep


class BeasEvaluator(Evaluator):
    """Evaluator with the BEAS set-difference guard.

    For ``Q = Q1 − Q2`` where ``Q2``'s data was fetched through access
    templates (non-zero resolution), plain set difference over approximate
    answers cannot guarantee Theorem 6(5) (``t ∈ Q2(D) ⇒ t ∉ ξ_α(D)``): a
    tuple of ``Q2(D)`` might not literally appear among the fetched
    approximations.  The guard therefore removes every ``Q1``-answer within
    the fetch resolution of *some* answer to the maximal induced query
    ``Q̂2`` — any real ``Q2`` answer is represented within that distance, so
    it is guaranteed to be filtered out.

    The within-resolution existence test runs through
    :class:`repro.relational.kernels.RadiusMatcher` (hash buckets /
    banded search / KD-tree radius queries instead of scanning every
    ``Q̂2`` answer per ``Q1`` answer); when the fetched frames are
    shard-backed, the guard indexes each shard independently and merges
    (``any_match`` over the shards).  The set of surviving rows is
    identical to the nested-loop scan on every backend.
    """

    def _eval_difference(self, node: Difference) -> Frame:
        left = self._eval(node.left)
        right_exact = self._eval(node.right)
        positions = list(range(len(left.schema)))
        thresholds_exact = [
            self.relaxation.get(name, 0.0) for name in right_exact.schema.attribute_names
        ]
        if all(t == 0.0 for t in thresholds_exact):
            return self._strict_difference(left, right_exact)

        induced = maximal_induced_query(node.right)
        right = self._eval(induced)
        thresholds = [
            self.relaxation.get(name, 0.0) for name in right.schema.attribute_names
        ]
        distances = [attribute.distance for attribute in left.schema.attributes]
        guard = RadiusMatcher.from_store(
            right.store, list(range(len(distances))), distances, thresholds
        )
        # Survivors are collected as indices (rows assembled column-wise for
        # the guard probes) and gathered out of the backend in one take.
        # The probes go through the guard's batch API: when the induced
        # query's answers are shard-backed and the process executor is
        # active, the whole probe set ships to the worker processes in one
        # round per shard instead of one ``any_match`` call per row.
        hits = guard.any_match_many(list(left.store.key_tuples(positions)))
        keep = [index for index, hit in enumerate(hits) if not hit]
        return self._kept_frame(left, keep)


class PlanExecutor:
    """Executes a bounded plan: fetches data, then evaluates queries over it."""

    def __init__(
        self,
        database: Database,
        plan: BoundedPlan,
        meter: Optional[AccessMeter] = None,
    ) -> None:
        self.database = database
        self.plan = plan
        self.meter = meter
        self._step_frames: Dict[str, Frame] = {}
        self._atom_frames: Optional[Dict[str, Frame]] = None

    # -- stage 1: fetching --------------------------------------------------------
    def fetch(self) -> Dict[str, Frame]:
        """Run the fetching plan; returns the per-step result frames."""
        for step in self.plan.fetch_plan:
            self._step_frames[step.name] = self._run_step(step)
        self._atom_frames = self._build_atom_frames()
        return self._step_frames

    def _step_schema(self, step: FetchStep) -> RelationSchema:
        base = self.database.schema.relation(step.relation)
        attrs = [
            Attribute(f"{step.alias}.{name}", base.attribute(name).distance)
            for name in step.accessor.x + step.accessor.y
        ]
        return RelationSchema(step.name, attrs)

    def _input_values(self, step: FetchStep) -> List[Tuple[object, ...]]:
        """All ``X``-value combinations fed to the step's accessor."""
        const_values: Dict[str, object] = {}
        by_step: Dict[str, List[Tuple[str, str]]] = {}
        for source in step.sources:
            if source.kind == "const":
                const_values[source.attribute] = source.value
            else:
                by_step.setdefault(source.step, []).append((source.attribute, source.column))

        group_choices: List[List[Dict[str, object]]] = []
        for step_name, pairs in by_step.items():
            frame = self._step_frames.get(step_name)
            if frame is None:
                raise PlanError(f"fetch step {step.name} reads from {step_name} before it ran")
            positions = [frame.schema.position(column) for _, column in pairs]
            seen: Dict[Tuple[object, ...], None] = {}
            for values in frame.key_tuples(positions):
                seen.setdefault(values, None)
            group_choices.append(
                [dict(zip((attr for attr, _ in pairs), values)) for values in seen]
            )

        x_order = step.accessor.x
        combos: List[Tuple[object, ...]] = []
        seen_combo: Dict[Tuple[object, ...], None] = {}
        if group_choices:
            for parts in itertools.product(*group_choices):
                merged = dict(const_values)
                for part in parts:
                    merged.update(part)
                value = tuple(merged[a] for a in x_order)
                seen_combo.setdefault(value, None)
            combos = list(seen_combo)
        else:
            combos = [tuple(const_values[a] for a in x_order)]
        return combos

    def _run_step(self, step: FetchStep) -> Frame:
        """Fetch one step's tuples into a frame.

        The frame is bulk-built on the same storage backend as the base
        relation it was fetched from, so a column- or shard-backed database
        keeps its layout through the evaluation stage: relaxed selections
        fan out per shard, and the set-difference guard / relaxed joins
        build their distance kernels per shard instead of over one
        monolithic buffer.
        """
        schema = self._step_schema(step)
        rows: List[Row] = []
        weights: List[float] = []
        for x_value in self._input_values(step):
            for fetched_row, count in step.accessor.fetch(x_value, self.meter):
                rows.append(tuple(fetched_row))
                weights.append(float(count))
        # Use the base relation's store *class* directly rather than looking
        # its backend name up in the registry — a relation may be backed by
        # an unregistered store (e.g. an unregistered ShardedStore.configured
        # variant adopted via Relation(schema, store=...)).
        store_cls = type(self.database.relation(step.relation).store)
        return Frame(schema, weights=weights, store=store_cls.from_rows(len(schema), rows))

    # -- stage 2: per-atom frames ----------------------------------------------------
    def _build_atom_frames(self) -> Dict[str, Frame]:
        frames: Dict[str, Frame] = {}
        for alias in self.plan.fetch_plan.aliases():
            frames[alias] = self._atom_frame(alias)
        return frames

    def _atom_frame(self, alias: str) -> Frame:
        steps = self.plan.fetch_plan.steps_for(alias)
        if not steps:
            raise PlanError(f"no fetch steps for query atom {alias!r}")
        needed = set(self.plan.needed_attributes.get(alias, ()))
        constants = self.plan.constants.get(alias, {})

        # Prefer a single step that already spans every needed attribute (the
        # chase arranges for one); fall back to a natural join of the atom's
        # steps otherwise.
        spanning = [
            step
            for step in steps
            if needed - set(constants) <= set(step.accessor.x + step.accessor.y)
        ]
        if spanning:
            frame = self._step_frames[spanning[-1].name]
        else:
            frame = self._step_frames[steps[0].name]
            for step in steps[1:]:
                frame = self._natural_join(frame, self._step_frames[step.name])

        # Re-materialise constant attributes the fetches did not need to read.
        missing = [
            attribute
            for attribute in needed
            if f"{alias}.{attribute}" not in frame.schema
        ]
        if missing:
            base = self.database.schema.relation(
                self.plan.fetch_plan.steps_for(alias)[0].relation
            )
            extra_attrs = []
            extra_values = []
            for attribute in missing:
                if attribute not in constants:
                    raise PlanError(
                        f"attribute {alias}.{attribute} is needed by the query but was "
                        f"neither fetched nor fixed to a constant"
                    )
                extra_attrs.append(
                    Attribute(f"{alias}.{attribute}", base.attribute(attribute).distance)
                )
                extra_values.append(constants[attribute])
            schema = RelationSchema(alias, frame.schema.attributes + tuple(extra_attrs))
            # Constant columns are appended column-wise on the frame's own
            # backend — the fetched buffers are reused, no row is rebuilt.
            columns = list(frame.store.columns()) + [
                [value] * len(frame) for value in extra_values
            ]
            store = type(frame.store).from_columns(len(schema), columns)
            frame = Frame(schema, weights=list(frame.weights), store=store)
        return frame

    @staticmethod
    def _natural_join(left: Frame, right: Frame) -> Frame:
        common = [name for name in left.schema.attribute_names if name in right.schema]
        right_only = [name for name in right.schema.attribute_names if name not in left.schema]
        out_schema = RelationSchema(
            left.schema.name,
            left.schema.attributes
            + tuple(right.schema.attribute(name) for name in right_only),
        )
        left_indices: List[int] = []
        right_indices: List[int] = []
        if not common:
            # Cross product, with the same empty/singleton fast paths as
            # Evaluator._product (no quadratic index lists for trivial sides).
            size_left, size_right = len(left), len(right)
            if size_left and size_right:
                if size_right == 1:
                    left_indices = list(range(size_left))
                    right_indices = [0] * size_left
                elif size_left == 1:
                    left_indices = [0] * size_right
                    right_indices = list(range(size_right))
                else:
                    left_indices = [
                        i for i in range(size_left) for _ in range(size_right)
                    ]
                    right_indices = list(range(size_right)) * size_left
        else:
            # Join keys are read column-wise; matches are index pairs.
            left_positions = left.schema.positions(common)
            right_positions = right.schema.positions(common)
            buckets: Dict[Tuple[object, ...], List[int]] = {}
            for index, key in enumerate(right.key_tuples(right_positions)):
                buckets.setdefault(key, []).append(index)
            for index, key in enumerate(left.key_tuples(left_positions)):
                hits = buckets.get(key)
                if hits:
                    left_indices.extend([index] * len(hits))
                    right_indices.extend(hits)
        weights = [
            left.weights[i] * right.weights[j]
            for i, j in zip(left_indices, right_indices)
        ]
        # Output columns: all of the left side, then the right side's carried
        # columns, each gathered at its side's matched indices.
        sources: List[Tuple[Store, int, Sequence[int]]] = [
            (left.store, position, left_indices) for position in range(len(left.schema))
        ]
        sources += [
            (right.store, right.schema.position(name), right_indices)
            for name in right_only
        ]
        store = gather_columns(sources)
        return Frame(out_schema, weights=weights, store=store)

    # -- stage 3: evaluation ------------------------------------------------------------
    def evaluate(self, query: Optional[QueryNode] = None) -> Relation:
        """Evaluate ``query`` (default: the plan's query) over the fetched data."""
        if self._atom_frames is None:
            self.fetch()
        query = query if query is not None else self.plan.query
        evaluator = BeasEvaluator(
            self.database.schema,
            MappingProvider(self._atom_frames),
            relaxation=self.plan.resolution_map(),
            needed_attributes=self.plan.needed_attributes,
        )
        return evaluator.evaluate(query)

    def execute(self) -> Relation:
        """Fetch (if needed) and evaluate the plan's query."""
        return self.evaluate(self.plan.query)


def execute_plan(
    database: Database, plan: BoundedPlan, meter: Optional[AccessMeter] = None
) -> Relation:
    """Convenience wrapper: execute a bounded plan end to end."""
    return PlanExecutor(database, plan, meter).execute()
