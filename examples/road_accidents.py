"""TFACC-style scenario: real-time problem diagnosis over road-accident logs.

The paper motivates resource-bounded approximation with exploratory queries
such as real-time diagnosis on logs: an analyst asks ad-hoc questions (not
known in advance) and wants answers in bounded time with a known accuracy.
This example runs a diagnosis session over the TFACC-like dataset: severity
breakdowns, set-difference queries ("accidents on fast roads that are NOT
slight"), and shows the deterministic bound η reported with every answer.

Run:  python examples/road_accidents.py
"""

from __future__ import annotations

from repro import parse_query, rc_accuracy
from repro.experiments import build_beas
from repro.workloads import tfacc

ALPHA = 0.02

SESSION = [
    (
        "casualties by road type",
        "select a.road_type, sum(a.casualties) from accidents as a "
        "where a.year >= 1995 group by a.road_type",
    ),
    (
        "serious high-speed accidents",
        "select a.speed_limit, a.casualties from accidents as a "
        "where a.severity <= 2 and a.speed_limit >= 60",
    ),
    (
        "fast-road accidents that are not slight",
        "select a.speed_limit, a.casualties from accidents as a "
        "where a.speed_limit >= 60 "
        "except select b.speed_limit, b.casualties from accidents as b where b.severity = 3",
    ),
    (
        "average driver age by vehicle type",
        "select v.vehicle_type, avg(v.driver_age) from vehicles as v, accidents as a "
        "where v.accident_id = a.accident_id and a.severity <= 2 group by v.vehicle_type",
    ),
]


def main() -> None:
    workload = tfacc.generate(accidents=6000, stops=1500, seed=41)
    database = workload.database
    print(f"TFACC-like dataset: |D| = {database.total_tuples} tuples, alpha = {ALPHA}")
    print(f"per-query access budget: {database.budget_for(ALPHA)} tuples")

    beas = build_beas(workload)
    for name, sql in SESSION:
        ast = parse_query(sql)
        result = beas.answer(ast, ALPHA)
        exact = beas.answer_exact(ast)
        accuracy = rc_accuracy(ast, database, result.rows, exact)
        print()
        print(f"== {name} [{result.query_class}]")
        print(f"   rows={len(result.rows)} (exact {len(exact)})  "
              f"accessed={result.tuples_accessed}/{result.budget}")
        print(f"   guaranteed eta >= {result.eta:.3f}   measured RC accuracy = {accuracy.accuracy:.3f}")
        for row in list(result.rows.rows)[:3]:
            print(f"     {row}")


if __name__ == "__main__":
    main()
