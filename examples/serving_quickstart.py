"""Serving quickstart: a long-lived QueryServer over one BEAS instance.

Walks the serving subsystem end to end on the TPC-H-like workload:

1. repeated queries hit the result cache (bit-identical answers, ~10-100x
   faster than re-planning and re-executing);
2. mutating the database advances its *publication epoch*, which rotates
   every cache key — the next request recomputes, no invalidation call
   anywhere;
3. under the ``degrade-alpha`` admission policy, a saturated server steps
   the resource ratio down a documented ladder and reports the served α
   and its η accuracy bound in the response envelope.

Run:  python examples/serving_quickstart.py
"""

from __future__ import annotations

import json

from repro import Beas, QueryServer
from repro.serving import AdmissionController
from repro.workloads import tpch

SQL = (
    "select l.l_extendedprice, l.l_discount from lineitem as l "
    "where l.l_shipyear >= 1995 and l.l_extendedprice <= 20000"
)


def main() -> None:
    workload = tpch.generate(scale=1, seed=13)
    beas = Beas(
        workload.database,
        constraints=workload.constraints,
        families=workload.families,
    )
    server = QueryServer(beas)

    # 1. Cold, then warm: the second request is served from the result cache.
    cold = server.serve(SQL, alpha=0.2)
    warm = server.serve(SQL, alpha=0.2)
    print(f"cold: {cold}")
    print(f"warm: {warm}")
    print(
        f"  warm hit={warm.result_cache_hit}, identical rows={list(cold.rows) == list(warm.rows)}, "
        f"speedup={cold.serve_seconds / max(warm.serve_seconds, 1e-9):.0f}x"
    )

    # 2. Mutate the database: the epoch advances, the stale entry is dead.
    lineitem = workload.database.relation("lineitem")
    lineitem.append(lineitem.rows[0])
    post = server.serve(SQL, alpha=0.2)
    print(
        f"after mutation: hit={post.result_cache_hit} "
        f"(epoch {warm.publication_epoch} -> {post.publication_epoch})"
    )

    # 3. Degrade-alpha under load: occupy every admission slot, then serve.
    admission = AdmissionController(max_concurrency=2, policy="degrade-alpha")
    loaded = QueryServer(beas, admission=admission)
    admission.admit(0.2)
    admission.admit(0.2)  # server now "full": next request degrades
    degraded = loaded.serve(SQL, alpha=0.2)
    admission.release()
    admission.release()
    print(
        f"degraded: served_alpha={degraded.served_alpha:g} "
        f"(requested {degraded.requested_alpha:g}), eta={degraded.eta:.3f}"
    )

    # Observability: everything above is visible in the stats snapshot.
    print("\nstats snapshot:")
    print(json.dumps(server.stats.snapshot(), indent=2))


if __name__ == "__main__":
    main()
