"""Quickstart: answer a query with bounded resources and inspect the guarantees.

Builds the Example-1 social dataset (person / friend / poi), sets up BEAS with
the paper's access schema (friend-list and home-city constraints plus the
(type, city) POI template family), and answers the "hotels under $95 in my
friends' cities" query at several resource ratios, comparing against the exact
answers.

Also demonstrates the pluggable storage layer (``repro.relational.store``):
every relation can live row-wise (``backend="row"``, the default — one tuple
per row), column-wise (``backend="column"`` — one contiguous buffer per
attribute, ``array('d')``/``array('q')`` for pure float/int columns), or
horizontally partitioned (``backend="sharded"`` — per-shard column stores
split by a hash / round-robin / range partitioner, with shard-parallel
selection and per-shard distance kernels / KD-trees).  The whole pipeline —
selection via *fused chunked* predicate mask programs (configurable chunk
size, selectivity-ordered short-circuiting), *index-pair* hash joins whose
outputs are materialized by per-column gather (``Store.take`` /
``Store.gather_column``), KD-tree construction, RC accuracy sweeps — reads
through the backend and returns bit-identical answers on every backend;
columnar/sharded storage is simply faster on scan/selection/join-heavy work
(see ``benchmarks/bench_kernels.py``).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Beas, parse_query, rc_accuracy
from repro.relational import Database
from repro.workloads import social


def to_column_backend(database: Database) -> Database:
    """Rebuild every relation of ``database`` on the columnar backend.

    (A process-wide default can be set instead with
    ``repro.relational.set_default_backend("column")``, and individual
    relations can be built columnar directly via
    ``Relation(schema, rows, backend="column")`` or
    ``Relation.from_columns(schema, {"price": [...], ...})``.)
    """
    return Database.from_relations(
        [
            database.relation(name).with_backend("column")
            for name in database.relation_names
        ]
    )


def main() -> None:
    workload = social.generate(persons=2000, pois=12000, cities=50, seed=7)
    database = to_column_backend(workload.database)
    poi = database.relation("poi")
    print(
        f"dataset: {database.relation_sizes()}  (|D| = {database.total_tuples}, "
        f"storage backend: {poi.backend})"
    )

    # Column-backed relations answer vectorized predicates column-at-a-time:
    # σ_{type='hotel' ∧ price<=95} runs as byte-masks over the type/price
    # buffers instead of one Python call per row.
    from repro.algebra.predicates import AttrRef, CompareOp, Comparison, Conjunction, Const

    cheap_hotels = poi.select(
        Conjunction.of(
            [
                Comparison(AttrRef(None, "type"), CompareOp.EQ, Const("hotel")),
                Comparison(AttrRef(None, "price"), CompareOp.LE, Const(95.0)),
            ]
        )
    )
    print(f"vectorized σ over poi: {len(cheap_hotels)} hotels under $95\n")

    # Offline phase: build the access schema indexes (canonical A_t plus the
    # workload's declared constraints and template families).
    beas = Beas(database, constraints=workload.constraints, families=workload.families)
    print(beas.access_schema.describe())
    print()

    query_sql = social.example_queries()[0]
    print("query:", query_sql)
    exact = beas.answer_exact(query_sql)
    print(f"exact answers: {len(exact)} rows\n")

    for alpha in (0.001, 0.005, 0.02, 0.1):
        result = beas.answer(query_sql, alpha)
        accuracy = rc_accuracy(parse_query(query_sql), database, result.rows, exact)
        print(
            f"alpha={alpha:<6g} budget={result.budget:<6} accessed={result.tuples_accessed:<6} "
            f"rows={len(result.rows):<5} eta>={result.eta:.3f} "
            f"measured RC accuracy={accuracy.accuracy:.3f} exact_plan={result.exact}"
        )

    print()
    print("plan at alpha=0.005:")
    print(beas.explain(query_sql, 0.005))

    # The second query of Example 1 is boundedly evaluable: exact answers from
    # a tiny, |D|-independent amount of data.
    q2 = social.example_queries()[1]
    result = beas.answer(q2, 0.001)
    print()
    print("boundedly evaluable query:", q2)
    print(
        f"  exact={result.exact} boundedly_evaluable={result.boundedly_evaluable} "
        f"accessed={result.tuples_accessed} tuples out of {database.total_tuples}"
    )

    # Row- and column-backed execution are interchangeable: same answers,
    # different memory layout.
    row_db = workload.database  # original row-backed instance
    row_beas = Beas(row_db, constraints=workload.constraints, families=workload.families)
    row_result = row_beas.answer(query_sql, 0.02)
    col_result = beas.answer(query_sql, 0.02)
    assert row_result.rows == col_result.rows
    print()
    print(
        "row- and column-backed BEAS agree: "
        f"{len(row_result.rows)} == {len(col_result.rows)} answer rows"
    )

    # --- Sharded storage -------------------------------------------------
    # backend="sharded" partitions each relation across per-shard column
    # stores (4 shards, round-robin by default).  Selections fan out one
    # vectorized mask per shard, and the distance kernels / KD-trees build
    # one index per shard and merge — same answers, partition-parallel work.
    from repro.relational import (
        ShardedStore,
        register_backend,
        set_shard_workers,
    )

    sharded_poi = workload.database.relation("poi").with_backend("sharded")
    sharded_hotels = sharded_poi.select(
        Conjunction.of(
            [
                Comparison(AttrRef(None, "type"), CompareOp.EQ, Const("hotel")),
                Comparison(AttrRef(None, "price"), CompareOp.LE, Const(95.0)),
            ]
        )
    )
    assert sharded_hotels == cheap_hotels
    print()
    print(
        f"sharded σ over poi agrees: {len(sharded_hotels)} hotels across "
        f"{sharded_poi.store.shard_count} shards "
        f"(sizes {[len(s) for s in sharded_poi.store.shards]})"
    )

    # Shard count and partitioner are configurable; a configured variant can
    # be registered as its own backend name.  Partitioner guidance: "range"
    # keeps shards contiguous (whole-column reads concatenate typed buffers
    # at C speed — best for scan-heavy work), "round_robin" balances load
    # perfectly, "hash" keeps equal rows together.
    register_backend("sharded8", ShardedStore.configured(8, "range", name="sharded8"))
    eight = workload.database.relation("poi").with_backend("sharded8")
    assert eight.distinct() == sharded_poi.distinct()
    print(f"sharded8 (range) shard sizes: {[len(s) for s in eight.store.shards]}")

    # --- Shard executors: serial / thread / process -----------------------
    # How per-shard work actually runs is a knob, orthogonal to the layout:
    #
    #   set_shard_executor("serial")   every shard on the calling thread
    #   set_shard_executor("thread")   bounded ThreadPoolExecutor (default)
    #   set_shard_executor("process")  process pool over shared memory
    #
    # "process" is the one that buys real CPU parallelism for pure-Python
    # work: the first query publishes each shard's column buffers into
    # multiprocessing.shared_memory once, worker processes decode and cache
    # them, and every later query ships only the compiled mask program / the
    # kernel query parameters — never the data.  Routing is automatic and
    # conservative: only picklable whole-store computations (fused mask
    # programs, kernel batch queries like RadiusMatcher.matches_many, KD
    # radius batches) cross the boundary; per-row callables, small stores
    # (below get_process_min_rows(), default 4096 rows — under that, the
    # round-trip costs more than the work) and anything unpicklable fall
    # back to the thread path with bit-identical results.  Mutating a store
    # retires its shared-memory segments; the next query republishes.
    #
    # Pool sizing: set_shard_workers(n) bounds BOTH pools (values < 1 raise;
    # None restores os.cpu_count()).  Environment overrides at import time:
    # REPRO_SHARD_WORKERS=4 REPRO_SHARD_EXECUTOR=process python app.py
    #
    # Rule of thumb: "process" pays off once per-shard work dominates the
    # ~millisecond task round-trip — i.e. shards of >= ~25k rows under
    # selective masks, or kernel batches of hundreds of probes — and only
    # with real spare cores ("thread" and "process" tie on one CPU).
    from repro.relational import set_shard_executor

    previous_executor = set_shard_executor("process")
    process_hotels = sharded_poi.select(
        Conjunction.of(
            [
                Comparison(AttrRef(None, "type"), CompareOp.EQ, Const("hotel")),
                Comparison(AttrRef(None, "price"), CompareOp.LE, Const(95.0)),
            ]
        )
    )
    set_shard_executor(previous_executor)
    assert process_hotels == cheap_hotels
    print("process-executor σ over poi agrees with the thread/serial paths")

    # Per-row *callable* predicates always scan sequentially in global row
    # order (they may be stateful); only vectorized predicates fan out per
    # shard.  set_shard_workers(1) forces the sequential fallback everywhere.
    set_shard_workers(1)
    assert eight.select(lambda row: row[1] == "hotel").store.backend == "sharded8"
    set_shard_workers(None)  # restore the default (os.cpu_count())

    # --- Columnar execution engine ---------------------------------------
    # Conjunctions do not evaluate one whole column at a time: they compile
    # to a fused chunked MaskProgram that processes the store in blocks
    # (4096 rows by default), fuses every comparison per block, orders the
    # comparisons by their observed selectivity and short-circuits blocks
    # that go all-zero.  The chunk size is a knob — results are bit-identical
    # at every setting, only the cache footprint / short-circuit granularity
    # changes.
    from repro.algebra.predicates import get_mask_chunk_size, set_mask_chunk_size

    previous = set_mask_chunk_size(1024)  # e.g. tighter blocks for small caches
    small_chunk = poi.select(
        Conjunction.of(
            [
                Comparison(AttrRef(None, "type"), CompareOp.EQ, Const("hotel")),
                Comparison(AttrRef(None, "price"), CompareOp.LE, Const(95.0)),
            ]
        )
    )
    set_mask_chunk_size(previous)
    assert small_chunk == cheap_hotels
    print(
        f"fused chunked selection agrees at chunk_size=1024 "
        f"(default {get_mask_chunk_size()})"
    )

    # Joins and products are index-pair joins: the hash/radius kernels emit
    # matched (left_index, right_index) pairs and the output frame is built
    # by per-column *gather* (Store.take / Store.gather_column — indices may
    # repeat, arrive out of order, or cross shards), so column- and
    # shard-backed plans never materialize intermediate Python row tuples.
    gathered = poi.store.take([2, 0, 2])  # out-of-order + duplicate gather
    assert gathered.row_list() == [poi.rows[2], poi.rows[0], poi.rows[2]]
    print("gather semantics: take([2, 0, 2]) returns rows 2, 0, 2 — in that order")


if __name__ == "__main__":
    main()
