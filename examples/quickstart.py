"""Quickstart: answer a query with bounded resources and inspect the guarantees.

Builds the Example-1 social dataset (person / friend / poi), sets up BEAS with
the paper's access schema (friend-list and home-city constraints plus the
(type, city) POI template family), and answers the "hotels under $95 in my
friends' cities" query at several resource ratios, comparing against the exact
answers.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Beas, parse_query, rc_accuracy
from repro.workloads import social


def main() -> None:
    workload = social.generate(persons=2000, pois=12000, cities=50, seed=7)
    database = workload.database
    print(f"dataset: {database.relation_sizes()}  (|D| = {database.total_tuples})")

    # Offline phase: build the access schema indexes (canonical A_t plus the
    # workload's declared constraints and template families).
    beas = Beas(database, constraints=workload.constraints, families=workload.families)
    print(beas.access_schema.describe())
    print()

    query_sql = social.example_queries()[0]
    print("query:", query_sql)
    exact = beas.answer_exact(query_sql)
    print(f"exact answers: {len(exact)} rows\n")

    for alpha in (0.001, 0.005, 0.02, 0.1):
        result = beas.answer(query_sql, alpha)
        accuracy = rc_accuracy(parse_query(query_sql), database, result.rows, exact)
        print(
            f"alpha={alpha:<6g} budget={result.budget:<6} accessed={result.tuples_accessed:<6} "
            f"rows={len(result.rows):<5} eta>={result.eta:.3f} "
            f"measured RC accuracy={accuracy.accuracy:.3f} exact_plan={result.exact}"
        )

    print()
    print("plan at alpha=0.005:")
    print(beas.explain(query_sql, 0.005))

    # The second query of Example 1 is boundedly evaluable: exact answers from
    # a tiny, |D|-independent amount of data.
    q2 = social.example_queries()[1]
    result = beas.answer(q2, 0.001)
    print()
    print("boundedly evaluable query:", q2)
    print(
        f"  exact={result.exact} boundedly_evaluable={result.boundedly_evaluable} "
        f"accessed={result.tuples_accessed} tuples out of {database.total_tuples}"
    )


if __name__ == "__main__":
    main()
