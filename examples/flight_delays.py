"""AIRCA-style scenario: exploratory analytics over flight on-time data.

Mirrors the paper's AIRCA experiments: aggregate and selection queries over a
flights fact table joined with carrier and airport dimensions, answered with a
small resource ratio.  Shows how the same budget is re-allocated per query
(dynamic data reduction) and how BEAS compares with the sampling and histogram
baselines under the RC measure.

Run:  python examples/flight_delays.py
"""

from __future__ import annotations

from repro import parse_query, rc_accuracy
from repro.baselines import MultiDimHistogram, UniformSampling
from repro.experiments import build_beas
from repro.workloads import airca

ALPHA = 0.01

QUERIES = {
    "late departures by carrier": (
        "select f.carrier, avg(f.dep_delay) from flights as f, carriers as c "
        "where f.carrier = c.carrier and f.year >= 2005 group by f.carrier"
    ),
    "long delayed flights": (
        "select f.dep_delay, f.distance from flights as f, airports as a "
        "where f.origin = a.airport and a.state = 'CA' and f.dep_delay >= 60"
    ),
    "flights per carrier (count)": (
        "select f.carrier, count(f.flight_id) from flights as f "
        "where f.year >= 2000 group by f.carrier"
    ),
}


def main() -> None:
    workload = airca.generate(flights=8000, airports=60, seed=29)
    database = workload.database
    print(f"AIRCA-like dataset: |D| = {database.total_tuples} tuples")

    beas = build_beas(workload)
    sampl = UniformSampling(database, seed=1).build(ALPHA)
    histo = MultiDimHistogram(database, seed=1).build(ALPHA)

    for name, sql in QUERIES.items():
        ast = parse_query(sql)
        exact = beas.answer_exact(ast)
        result = beas.answer(ast, ALPHA)
        beas_acc = rc_accuracy(ast, database, result.rows, exact).accuracy
        sampl_acc = rc_accuracy(ast, database, sampl.answer(ast), exact).accuracy
        histo_acc = rc_accuracy(ast, database, histo.answer(ast), exact).accuracy
        print()
        print(f"== {name}")
        print(f"   {sql}")
        print(
            f"   exact rows={len(exact):<5} BEAS rows={len(result.rows):<5} "
            f"accessed={result.tuples_accessed}/{result.budget} eta>={result.eta:.3f}"
        )
        print(
            f"   RC accuracy: BEAS={beas_acc:.3f}  Sampl={sampl_acc:.3f}  Histo={histo_acc:.3f}"
        )


if __name__ == "__main__":
    main()
