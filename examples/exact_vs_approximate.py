"""Bounded evaluation vs resource-bounded approximation on TPC-H-like data.

Demonstrates the two regimes of BEAS on the same dataset:

* *boundedly evaluable* queries (key/foreign-key lookups covered by access
  constraints) are answered **exactly** from a tiny, |D|-independent amount of
  data — the α_exact ratios of Exp-3;
* queries that are not boundedly evaluable get **approximate** answers with a
  deterministic accuracy bound that improves as α grows.

Run:  python examples/exact_vs_approximate.py
"""

from __future__ import annotations

from repro import parse_query, rc_accuracy
from repro.experiments import build_beas
from repro.workloads import tpch

BOUNDED_SQL = (
    "select o.o_totalprice, c.c_acctbal from orders as o, customer as c "
    "where o.o_orderkey = 7 and o.o_custkey = c.c_custkey"
)
APPROX_SQL = (
    "select l.l_extendedprice, l.l_discount from lineitem as l, orders as o "
    "where l.l_orderkey = o.o_orderkey and o.o_orderstatus = 'F' "
    "and l.l_shipyear >= 1995 and l.l_extendedprice <= 20000"
)


def main() -> None:
    for scale in (1, 3):
        workload = tpch.generate(scale=scale, seed=13)
        database = workload.database
        beas = build_beas(workload)
        print(f"\n=== TPC-H-like scale {scale}: |D| = {database.total_tuples} tuples ===")

        # Boundedly evaluable query: exact answers, data accessed independent of |D|.
        print(f"bounded query is boundedly evaluable: {beas.is_boundedly_evaluable(BOUNDED_SQL)}")
        print(f"alpha_exact for it: {beas.alpha_exact(BOUNDED_SQL):.2e}")
        result = beas.answer(BOUNDED_SQL, 0.01)
        print(
            f"  exact={result.exact} rows={len(result.rows)} accessed={result.tuples_accessed} "
            f"tuples (budget {result.budget})"
        )

        # Non-bounded query: approximation quality scales with alpha.
        ast = parse_query(APPROX_SQL)
        exact = beas.answer_exact(ast)
        print(f"approximate query: {len(exact)} exact answers")
        for alpha in (0.005, 0.02, 0.1):
            result = beas.answer(ast, alpha)
            accuracy = rc_accuracy(ast, database, result.rows, exact)
            print(
                f"  alpha={alpha:<6g} eta>={result.eta:.3f} measured={accuracy.accuracy:.3f} "
                f"accessed={result.tuples_accessed}/{result.budget}"
            )


if __name__ == "__main__":
    main()
